// The cache lifecycle subsystem: the legacy LruCache template's contract
// (eviction order, overwrite refresh, zero capacity), the Decision weigher,
// the byte-weighted segmented ShardCache (scan resistance, frequency-sketch
// admission), the shared cross-shard CacheBudget (hard byte invariant,
// coldest-shard-first victims, starvation floors), the versioned snapshot
// format (round trip, corruption / stale-fingerprint rejection), and the
// service-level warm start (SaveCaches → restart → RegisterSetting serves
// yesterday's decision as a hit with zero evaluations).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/budget.h"
#include "cache/persist.h"
#include "cache/shard_cache.h"
#include "cache/weigher.h"
#include "service/lru_cache.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::S;

// ----------------------------------------------------- legacy LruCache --

TEST(LruCacheTest, EvictionOrderIsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_NE(cache.Get(1), nullptr);  // 1 is now the most recent
  cache.Put(3, "three");             // evicts 2, the least recent
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, OverwriteRefreshesRecencyAndReplacesValue) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  cache.Put(1, "uno");  // overwrite refreshes 1's recency
  cache.Put(3, "three");  // evicts 2, not the refreshed 1
  const std::string* one = cache.Get(1);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(*one, "uno");
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, ZeroCapacityStoresNothing) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmptiesTheCache) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(3, 30);  // still usable after Clear
  EXPECT_NE(cache.Get(3), nullptr);
}

// --------------------------------------------------------------- weigher --

Decision BareDecision() {
  Decision decision;
  decision.answer = true;
  return decision;
}

Decision WitnessDecision() {
  Decision decision;
  decision.answer = false;
  decision.note = "counterexample attached";
  auto witness = std::make_shared<CompletenessWitness>();
  Instance world(testing::EdgeSchema());
  for (int i = 0; i < 16; ++i) {
    world.AddTuple("E", {Value::Int(i), S(("node-" + std::to_string(i)).c_str())});
  }
  witness->world = world;
  witness->extension = world;
  witness->answer = {Value::Int(1), Value::Int(2)};
  witness->note = "world and extension disagree";
  decision.witness = witness;
  return decision;
}

TEST(WeigherTest, DeepWitnessDominatesBareVerdicts) {
  const size_t bare = cache::WeighDecision(BareDecision());
  Decision noted = BareDecision();
  noted.note = std::string(256, 'n');
  const size_t with_note = cache::WeighDecision(noted);
  const size_t with_witness = cache::WeighDecision(WitnessDecision());

  EXPECT_GE(bare, sizeof(Decision));
  EXPECT_EQ(with_note, bare + 256);  // note bytes charged exactly
  // The witness payload (two 16-row instances + schemas) dwarfs the verdict.
  EXPECT_GT(with_witness, bare + 500);
  // Deterministic: the same decision always weighs the same.
  EXPECT_EQ(cache::WeighDecision(WitnessDecision()),
            cache::WeighDecision(WitnessDecision()));
}

// ------------------------------------------------------------ ShardCache --

RequestCacheKey Key(uint64_t i) {
  return RequestCacheKey{i + 1, (i + 1) * 0x9e3779b97f4a7c15ULL};
}

Decision PaddedDecision(uint64_t id, size_t note_bytes) {
  Decision decision;
  decision.answer = (id % 2) == 0;
  decision.note = std::string(note_bytes, static_cast<char>('a' + id % 26));
  return decision;
}

cache::ShardCacheOptions CacheOpts(size_t max_entries) {
  cache::ShardCacheOptions options;
  options.max_entries = max_entries;
  return options;
}

TEST(ShardCacheTest, ZeroCapacityIsDisabled) {
  cache::ShardCache cache(CacheOpts(0));
  EXPECT_FALSE(cache.Put(Key(1), BareDecision()));
  Decision out;
  EXPECT_FALSE(cache.Get(Key(1), &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardCacheTest, GetCopiesTheDecisionAndCountsHits) {
  cache::ShardCache cache(CacheOpts(8));
  ASSERT_TRUE(cache.Put(Key(1), PaddedDecision(1, 32)));
  Decision out;
  ASSERT_TRUE(cache.Get(Key(1), &out));
  EXPECT_EQ(out.note, std::string(32, 'b'));
  EXPECT_FALSE(cache.Get(Key(2), &out));
  const cache::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.5);
  EXPECT_GT(stats.bytes, cache::kEntryOverheadBytes);
}

TEST(ShardCacheTest, ReReferencedEntrySurvivesOneShotScan) {
  // Segmented LRU: A is promoted to the protected segment by its second
  // touch; a scan of one-shot keys then churns probation around it.
  cache::ShardCache cache(CacheOpts(4));
  ASSERT_TRUE(cache.Put(Key(0), PaddedDecision(0, 16)));
  Decision out;
  ASSERT_TRUE(cache.Get(Key(0), &out));  // promote
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cache.Put(Key(i), PaddedDecision(i, 16)));
  }
  for (uint64_t scan = 10; scan < 18; ++scan) {
    cache.Put(Key(scan), PaddedDecision(scan, 16));  // one-shot flood
  }
  EXPECT_TRUE(cache.Get(Key(0), &out)) << "hot entry flushed by a scan";
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardCacheTest, AdmissionRefusesColdCandidateAgainstHotVictim) {
  cache::ShardCache cache(CacheOpts(2));
  ASSERT_TRUE(cache.Put(Key(1), PaddedDecision(1, 16)));
  Decision out;
  ASSERT_TRUE(cache.Get(Key(1), &out));
  ASSERT_TRUE(cache.Get(Key(1), &out));  // key 1 is hot
  ASSERT_TRUE(cache.Put(Key(2), PaddedDecision(2, 16)));
  ASSERT_TRUE(cache.Get(Key(2), &out));  // both resident entries protected
  // A cold one-shot candidate would displace a hot entry: refused.
  EXPECT_FALSE(cache.Put(Key(3), PaddedDecision(3, 16)));
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_TRUE(cache.Get(Key(1), &out));
  EXPECT_TRUE(cache.Get(Key(2), &out));
  EXPECT_FALSE(cache.Get(Key(3), &out));
}

TEST(ShardCacheTest, SnapshotEntriesOrderedColdestFirst) {
  cache::ShardCache cache(CacheOpts(8));
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.Put(Key(i), PaddedDecision(i, 8)));
  }
  Decision out;
  ASSERT_TRUE(cache.Get(Key(1), &out));  // 1 becomes the hottest (protected)
  auto entries = cache.SnapshotEntries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().first, Key(0));  // coldest: first-in, untouched
  EXPECT_EQ(entries.back().first, Key(1));   // hottest last
}

// ----------------------------------------------------------- CacheBudget --

struct BudgetedCache {
  std::shared_ptr<cache::ShardCache> cache;
};

std::shared_ptr<cache::ShardCache> MakeBudgeted(cache::CacheBudget* budget,
                                                size_t max_entries,
                                                size_t floor_bytes) {
  auto shard = std::make_shared<cache::ShardCache>(CacheOpts(max_entries));
  shard->AttachBudget(budget, shard, floor_bytes);
  return shard;
}

TEST(CacheBudgetTest, ColdestShardIsEvictedFirst) {
  // ~600-byte entries; budget fits about six of them.
  const size_t kNote = 512;
  const size_t kEntry =
      cache::WeighDecision(PaddedDecision(0, kNote)) + cache::kEntryOverheadBytes;
  cache::CacheBudget budget(6 * kEntry);
  auto cold = MakeBudgeted(&budget, 64, /*floor=*/0);
  auto warm = MakeBudgeted(&budget, 64, /*floor=*/0);

  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(cold->Put(Key(i), PaddedDecision(i, kNote)));
  }
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(warm->Put(Key(100 + i), PaddedDecision(i, kNote)));
  }
  // Touch everything in `warm` so `cold`'s tail is globally the oldest.
  Decision out;
  for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(warm->Get(Key(100 + i), &out));

  // Budget is full: the next insert (into warm) must evict from COLD, not
  // from the freshly touched warm shard.
  ASSERT_TRUE(warm->Put(Key(200), PaddedDecision(0, kNote)));
  EXPECT_LE(budget.used_bytes(), budget.budget_bytes());
  EXPECT_LT(cold->size(), 3u);
  EXPECT_EQ(warm->size(), 4u);
  EXPECT_GT(cold->stats().evictions, 0u);
  EXPECT_EQ(warm->stats().evictions, 0u);
}

TEST(CacheBudgetTest, FloorShieldsATenantFromPeerPressure) {
  const size_t kNote = 512;
  const size_t kEntry =
      cache::WeighDecision(PaddedDecision(0, kNote)) + cache::kEntryOverheadBytes;
  cache::CacheBudget budget(6 * kEntry);
  // The protected tenant's floor covers two entries.
  auto shielded = MakeBudgeted(&budget, 64, /*floor=*/2 * kEntry);
  auto greedy = MakeBudgeted(&budget, 64, /*floor=*/0);

  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(shielded->Put(Key(i), PaddedDecision(i, kNote)));
  }
  // Flood from the greedy tenant, far past the budget.
  for (uint64_t i = 0; i < 12; ++i) {
    greedy->Put(Key(100 + i), PaddedDecision(i, kNote));
    EXPECT_LE(budget.used_bytes(), budget.budget_bytes());
  }
  // The shielded tenant was evicted down to — but never below — its floor.
  EXPECT_GE(shielded->bytes(), 2 * kEntry);
  EXPECT_LE(shielded->size(), 2u);
  // The greedy tenant self-sheds once everyone else sits at its floor.
  EXPECT_GT(greedy->stats().evictions, 0u);
}

TEST(CacheBudgetTest, RefusedOverwriteLeavesTheOldEntryServing) {
  cache::CacheBudget budget(1024);
  auto shard = MakeBudgeted(&budget, 64, 0);
  ASSERT_TRUE(shard->Put(Key(1), PaddedDecision(1, 64)));
  // The replacement can never fit the budget: refused — and the resident
  // entry must keep serving, not be half-removed by the attempted swap.
  EXPECT_FALSE(shard->Put(Key(1), PaddedDecision(1, 4096)));
  Decision out;
  ASSERT_TRUE(shard->Get(Key(1), &out));
  EXPECT_EQ(out.note, std::string(64, 'b'));
  EXPECT_EQ(shard->stats().admission_rejects, 1u);
}

TEST(CacheBudgetTest, OversizedEntryIsRefusedOutright) {
  cache::CacheBudget budget(1024);
  auto shard = MakeBudgeted(&budget, 64, 0);
  EXPECT_FALSE(shard->Put(Key(1), PaddedDecision(1, 4096)));
  EXPECT_EQ(shard->stats().admission_rejects, 1u);
  EXPECT_EQ(budget.used_bytes(), 0u);
  // A fitting entry still goes in afterwards.
  EXPECT_TRUE(shard->Put(Key(2), PaddedDecision(2, 64)));
}

TEST(CacheBudgetTest, RefusedInsertNeverSacrificesResidentEntries) {
  // A refused Put must leave the cache UNCHANGED: in particular, a FULL
  // cache must not pre-evict an entry for an insert the budget then
  // refuses — reservation comes before any eviction.
  cache::CacheBudget budget(2048);
  auto shard = MakeBudgeted(&budget, /*max_entries=*/2, 0);
  ASSERT_TRUE(shard->Put(Key(1), PaddedDecision(1, 64)));
  ASSERT_TRUE(shard->Put(Key(2), PaddedDecision(2, 64)));
  ASSERT_EQ(shard->size(), 2u);
  EXPECT_FALSE(shard->Put(Key(3), PaddedDecision(3, 8192)));  // can never fit
  EXPECT_EQ(shard->size(), 2u);
  Decision out;
  EXPECT_TRUE(shard->Get(Key(1), &out));
  EXPECT_TRUE(shard->Get(Key(2), &out));
  EXPECT_EQ(shard->stats().evictions, 0u);
}

TEST(CacheBudgetTest, ConcurrentInsertsNeverExceedTheBudget) {
  const size_t kNote = 256;
  const size_t kBudget = 16 * 1024;
  cache::CacheBudget budget(kBudget);
  auto a = MakeBudgeted(&budget, 256, /*floor=*/1024);
  auto b = MakeBudgeted(&budget, 256, /*floor=*/1024);

  // TryCharge admits a reservation only within budget, so BOTH invariants
  // are hard: charged bytes never exceed the budget, and resident bytes
  // (≤ charged — every entry is charged before it materializes) never do
  // either, at any sampled instant.
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      if (budget.used_bytes() > kBudget) violations.fetch_add(1);
      if (a->bytes() + b->bytes() > kBudget) violations.fetch_add(1);
      std::this_thread::yield();
    }
  });
  auto flood = [&](const std::shared_ptr<cache::ShardCache>& shard,
                   uint64_t base) {
    for (uint64_t i = 0; i < 200; ++i) {
      shard->Put(Key(base + i), PaddedDecision(i, kNote));
      Decision out;
      shard->Get(Key(base + (i / 2)), &out);
    }
  };
  std::thread ta(flood, a, 0);
  std::thread tb(flood, b, 10'000);
  ta.join();
  tb.join();
  stop.store(true);
  sampler.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_LE(a->bytes() + b->bytes(), kBudget);
  EXPECT_GE(a->bytes(), 1024u);  // floors held through the crossfire
  EXPECT_GE(b->bytes(), 1024u);
}

// ----------------------------------------------------------- persistence --

cache::Snapshot MakeSnapshot() {
  cache::Snapshot snapshot;
  cache::SnapshotShard shard;
  shard.setting_key = RequestCacheKey{0xfeedULL, 0xbeefULL};

  Decision witnessed = WitnessDecision();
  witnessed.stats.valuations = 42;
  witnessed.stats.query_evals = 7;
  Valuation mu(3);
  mu.Bind(VarId{0}, Value::Int(-5));
  mu.Bind(VarId{2}, S("bound"));
  auto witness = std::make_shared<CompletenessWitness>(*witnessed.witness);
  witness->world_valuation = mu;
  witnessed.witness = std::move(witness);
  shard.entries.emplace_back(Key(1), witnessed);

  Decision error;  // cacheable error verdicts round-trip too
  error.status = Status::Undecidable("FO strong completeness is undecidable");
  shard.entries.emplace_back(Key(2), error);

  snapshot.shards.push_back(std::move(shard));
  return snapshot;
}

TEST(PersistTest, SnapshotRoundTripsDeeply) {
  const cache::Snapshot snapshot = MakeSnapshot();
  const std::string bytes = cache::EncodeSnapshot(snapshot);
  Result<cache::Snapshot> decoded = cache::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->shards.size(), 1u);
  const cache::SnapshotShard& shard = decoded->shards[0];
  EXPECT_EQ(shard.setting_key, snapshot.shards[0].setting_key);
  ASSERT_EQ(shard.entries.size(), 2u);

  const Decision& witnessed = shard.entries[0].second;
  EXPECT_EQ(shard.entries[0].first, Key(1));
  EXPECT_TRUE(witnessed.status.ok());
  EXPECT_FALSE(witnessed.answer);
  EXPECT_EQ(witnessed.note, "counterexample attached");
  EXPECT_EQ(witnessed.stats.valuations, 42u);
  EXPECT_EQ(witnessed.stats.query_evals, 7u);
  ASSERT_NE(witnessed.witness, nullptr);
  const Decision original = snapshot.shards[0].entries[0].second;
  EXPECT_EQ(witnessed.witness->world, original.witness->world);
  EXPECT_EQ(witnessed.witness->extension, original.witness->extension);
  EXPECT_EQ(witnessed.witness->answer, original.witness->answer);
  EXPECT_EQ(witnessed.witness->note, original.witness->note);
  // Valuation bindings survive (including the unbound middle slot).
  EXPECT_EQ(witnessed.witness->world_valuation.Get(VarId{0}), Value::Int(-5));
  EXPECT_FALSE(witnessed.witness->world_valuation.Get(VarId{1}).has_value());
  EXPECT_EQ(witnessed.witness->world_valuation.Get(VarId{2}), S("bound"));

  const Decision& error = shard.entries[1].second;
  EXPECT_EQ(error.status.code(), StatusCode::kUndecidable);
  EXPECT_EQ(error.status.message(), "FO strong completeness is undecidable");
  EXPECT_EQ(error.witness, nullptr);
}

TEST(PersistTest, CorruptionAndTruncationAreRejected) {
  std::string bytes = cache::EncodeSnapshot(MakeSnapshot());

  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] ^= 0x5a;  // flip a payload byte
  Result<cache::Snapshot> r1 = cache::DecodeSnapshot(corrupted);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("checksum"), std::string::npos)
      << r1.status().ToString();

  Result<cache::Snapshot> r2 =
      cache::DecodeSnapshot(bytes.substr(0, bytes.size() - 3));
  ASSERT_FALSE(r2.ok());  // size mismatch, before any payload parsing

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(cache::DecodeSnapshot(bad_magic).ok());

  std::string bad_version = bytes;
  bad_version[4] = 99;  // version field follows the 4-byte magic
  Result<cache::Snapshot> r4 = cache::DecodeSnapshot(bad_version);
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("version"), std::string::npos);
}

TEST(PersistTest, SaveAndLoadSnapshotFile) {
  const std::string path = ::testing::TempDir() + "relcomp_cache_test.rccs";
  EXPECT_OK(cache::SaveSnapshot(MakeSnapshot(), path));
  Result<cache::Snapshot> loaded = cache::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalEntries(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(cache::LoadSnapshot(path).ok());  // kNotFound, not a crash
}

// --------------------------------------------------------- service level --

/// An audit setting with `master_rows` patients: RCDP-strong per-patient
/// queries answer "no" WITH a counterexample witness (worlds may add more
/// visits), so distinct queries produce distinct witness-heavy entries.
PartiallyClosedSetting MakeWitnessSetting(int master_rows) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})}}));
  setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    setting.dm.AddTuple("Patientm",
                        {Value::Sym("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}}}});
  setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                           std::vector<int>{0});
  return setting;
}

ServiceRequest WitnessRequest(SettingHandle handle,
                              const DatabaseSchema& schema, int patient) {
  Instance db(schema);
  db.AddTuple("Visit", {Value::Sym("nhs-0"), S("EDI")});
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{0})},
      {RelAtom{"Visit",
               {CTerm(Value::Sym("nhs-" + std::to_string(patient))),
                VarId{0}}}}));
  request.cinstance = CInstance::FromInstance(db);
  request.want_witness = true;
  return ServiceRequest{handle, std::move(request)};
}

uint64_t PartitionSum(const EngineCounters& counters) {
  return counters.cache_hits + counters.cache_misses + counters.rejected +
         counters.expired + counters.cancelled;
}

TEST(CacheLifecycleServiceTest, SharedBudgetHoldsAcrossTenantsUnderLoad) {
  // Two witness-heavy tenants over one small shared byte budget, inserting
  // concurrently: total cached bytes must NEVER exceed the budget, the
  // coldest shard must pay first, floors must hold, and the request
  // partition invariant must still balance.
  const size_t kBudget = 24 * 1024;
  const size_t kFloor = 2 * 1024;
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 1024;
  options.cache_budget_bytes = kBudget;
  CompletenessService service(options);

  ShardOptions shard_options;
  shard_options.cache_floor_bytes = kFloor;
  ASSERT_OK_AND_ASSIGN(
      handle_a, service.RegisterSetting(MakeWitnessSetting(32), shard_options));
  ASSERT_OK_AND_ASSIGN(
      handle_b, service.RegisterSetting(MakeWitnessSetting(48), shard_options));
  const DatabaseSchema schema = MakeWitnessSetting(32).schema;

  // Phase 1: warm tenant A past its floor.
  size_t witnessed = 0;
  for (int i = 0; i < 6; ++i) {
    Decision decision = service.Decide(WitnessRequest(handle_a, schema, i));
    ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
    EXPECT_FALSE(decision.answer);  // more visits are always possible
    if (decision.witness != nullptr) ++witnessed;
  }
  EXPECT_GT(witnessed, 0u) << "fixture is not witness-heavy";
  ASSERT_OK_AND_ASSIGN(stats_a_before, service.CacheStats(handle_a));
  ASSERT_GE(stats_a_before.bytes, kFloor) << "phase 1 must overfill the floor";

  // Phase 2: both tenants insert concurrently while a sampler audits the
  // budget invariant.
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread sampler([&] {
    // No gtest assertions off the main thread: tally violations instead.
    while (!stop.load()) {
      Result<cache::CacheStats> sa = service.CacheStats(handle_a);
      Result<cache::CacheStats> sb = service.CacheStats(handle_b);
      if (sa.ok() && sb.ok() && sa->bytes + sb->bytes > kBudget) {
        violations.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  std::thread flood_a([&] {
    for (int i = 6; i < 24; ++i) {
      service.Decide(WitnessRequest(handle_a, schema, i));
    }
  });
  std::thread flood_b([&] {
    for (int i = 0; i < 40; ++i) {
      service.Decide(WitnessRequest(handle_b, schema, i));
    }
  });
  flood_a.join();
  flood_b.join();
  stop.store(true);
  sampler.join();
  EXPECT_EQ(violations.load(), 0) << "budget exceeded during the flood";

  ASSERT_OK_AND_ASSIGN(stats_a, service.CacheStats(handle_a));
  ASSERT_OK_AND_ASSIGN(stats_b, service.CacheStats(handle_b));
  EXPECT_LE(stats_a.bytes + stats_b.bytes, kBudget);
  EXPECT_GE(stats_a.bytes, kFloor);  // floors held
  EXPECT_GE(stats_b.bytes, kFloor);
  // Pressure evicted somebody — and the per-shard caches agree with the
  // overlaid EngineCounters view.
  EXPECT_GT(stats_a.evictions + stats_b.evictions, 0u);
  ASSERT_OK_AND_ASSIGN(counters_a, service.counters(handle_a));
  ASSERT_OK_AND_ASSIGN(counters_b, service.counters(handle_b));
  EXPECT_EQ(counters_a.evictions, stats_a.evictions);
  EXPECT_EQ(counters_b.cache_bytes, stats_b.bytes);
  // The scheduler partition invariant survives cache-lifecycle churn.
  EXPECT_EQ(counters_a.requests, PartitionSum(counters_a));
  EXPECT_EQ(counters_b.requests, PartitionSum(counters_b));
}

TEST(CacheLifecycleServiceTest, ColdTenantPaysBeforeTheActiveOne) {
  // Deterministic victim-selection check at the service level: tenant A
  // fills first and goes idle; tenant B's later inserts must evict A.
  ServiceOptions options;
  options.num_workers = 0;
  options.cache_budget_bytes = 8 * 1024;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle_a,
                       service.RegisterSetting(MakeWitnessSetting(32)));
  ASSERT_OK_AND_ASSIGN(handle_b,
                       service.RegisterSetting(MakeWitnessSetting(48)));
  const DatabaseSchema schema = MakeWitnessSetting(32).schema;

  for (int i = 0; i < 4; ++i) {
    service.Decide(WitnessRequest(handle_a, schema, i));
  }
  ASSERT_OK_AND_ASSIGN(before, service.CacheStats(handle_a));
  for (int i = 0; i < 24; ++i) {
    service.Decide(WitnessRequest(handle_b, schema, i));
  }
  ASSERT_OK_AND_ASSIGN(after_a, service.CacheStats(handle_a));
  ASSERT_OK_AND_ASSIGN(after_b, service.CacheStats(handle_b));
  EXPECT_LT(after_a.bytes, before.bytes) << "cold shard was not evicted";
  EXPECT_GT(after_a.evictions, 0u);
  EXPECT_GT(after_b.bytes, after_a.bytes);
}

TEST(CacheLifecycleServiceTest, WarmStartServesSnapshotDecisionsAsHits) {
  const std::string path = ::testing::TempDir() + "relcomp_warmstart.rccs";
  const PartiallyClosedSetting setting = MakeWitnessSetting(16);
  const DatabaseSchema schema = setting.schema;
  Decision original;
  {
    CompletenessService service(ServiceOptions{/*num_workers=*/0});
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
    original = service.Decide(WitnessRequest(handle, schema, 3));
    ASSERT_TRUE(original.status.ok()) << original.status.ToString();
    ASSERT_NE(original.witness, nullptr);
    service.Decide(WitnessRequest(handle, schema, 5));
    EXPECT_OK(service.SaveCaches(path));
  }
  {
    // "Restart": a fresh service loads the snapshot BEFORE the setting
    // registers; registration warm-starts the shard from the staged image.
    CompletenessService service(ServiceOptions{/*num_workers=*/0});
    ASSERT_OK_AND_ASSIGN(accepted, service.LoadCaches(path));
    EXPECT_EQ(accepted, 1u);
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
    ASSERT_OK_AND_ASSIGN(stats, service.CacheStats(handle));
    EXPECT_EQ(stats.restored, 2u);

    Decision restored = service.Decide(WitnessRequest(handle, schema, 3));
    EXPECT_TRUE(restored.from_cache) << restored.ToString();
    EXPECT_EQ(restored.status.code(), original.status.code());
    EXPECT_EQ(restored.answer, original.answer);
    ASSERT_NE(restored.witness, nullptr);
    EXPECT_EQ(restored.witness->world, original.witness->world);
    EXPECT_EQ(restored.witness->note, original.witness->note);

    // ZERO evaluations: the decision came from the snapshot, not a decider.
    ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
    EXPECT_EQ(counters.cache_misses, 0u);
    EXPECT_EQ(counters.cache_hits, 1u);
    EXPECT_EQ(counters.requests, PartitionSum(counters));
  }
  {
    // Stale fingerprint: different master data never matches the snapshot.
    CompletenessService service(ServiceOptions{/*num_workers=*/0});
    ASSERT_OK_AND_ASSIGN(accepted, service.LoadCaches(path));
    EXPECT_EQ(accepted, 1u);  // staged, but no taker
    ASSERT_OK_AND_ASSIGN(handle,
                         service.RegisterSetting(MakeWitnessSetting(17)));
    ASSERT_OK_AND_ASSIGN(stats, service.CacheStats(handle));
    EXPECT_EQ(stats.restored, 0u);
    Decision fresh = service.Decide(WitnessRequest(handle, schema, 3));
    EXPECT_FALSE(fresh.from_cache);
  }
  std::remove(path.c_str());
}

TEST(CacheLifecycleServiceTest, LoadAfterRegistrationRestoresLiveShard) {
  const std::string path = ::testing::TempDir() + "relcomp_warmlive.rccs";
  const PartiallyClosedSetting setting = MakeWitnessSetting(16);
  const DatabaseSchema schema = setting.schema;
  {
    CompletenessService service(ServiceOptions{/*num_workers=*/0});
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
    service.Decide(WitnessRequest(handle, schema, 1));
    EXPECT_OK(service.SaveCaches(path));
  }
  CompletenessService service(ServiceOptions{/*num_workers=*/0});
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
  ASSERT_OK_AND_ASSIGN(accepted, service.LoadCaches(path));  // AFTER register
  EXPECT_EQ(accepted, 1u);
  Decision restored = service.Decide(WitnessRequest(handle, schema, 1));
  EXPECT_TRUE(restored.from_cache);
  std::remove(path.c_str());
}

TEST(CacheLifecycleServiceTest, LoadIntoDisabledCacheCountsNothingApplied) {
  const std::string path = ::testing::TempDir() + "relcomp_warmoff.rccs";
  const PartiallyClosedSetting setting = MakeWitnessSetting(16);
  {
    CompletenessService service(ServiceOptions{/*num_workers=*/0});
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
    service.Decide(WitnessRequest(handle, setting.schema, 1));
    EXPECT_OK(service.SaveCaches(path));
  }
  ServiceOptions off;
  off.num_workers = 0;
  off.memoize = false;
  CompletenessService service(off);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(setting));
  // The image matches a LIVE shard whose cache is disabled: dropped, and
  // the "accepted" count must say so rather than claim a warm start.
  ASSERT_OK_AND_ASSIGN(accepted, service.LoadCaches(path));
  EXPECT_EQ(accepted, 0u);
  Decision fresh = service.Decide(WitnessRequest(handle, setting.schema, 1));
  EXPECT_FALSE(fresh.from_cache);
  std::remove(path.c_str());
}

TEST(CacheLifecycleServiceTest, ResolvedOptionsReportEffectiveCapacity) {
  // The doc/behavior mismatch fixed: with memoization off service-wide the
  // resolved per-shard options report capacity 0 — matching the cache's
  // actual behavior — instead of echoing an inherited capacity no cache
  // honors.
  ServiceOptions options;
  options.num_workers = 0;
  options.cache_capacity = 512;
  options.memoize = false;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle,
                       service.RegisterSetting(MakeWitnessSetting(8)));
  ASSERT_OK_AND_ASSIGN(resolved, service.shard_options(handle));
  EXPECT_EQ(resolved.cache_capacity, 0u);
  ASSERT_OK_AND_ASSIGN(stats, service.CacheStats(handle));
  EXPECT_EQ(stats.entries, 0u);

  // With memoization on, kInherit resolves to the service default.
  ServiceOptions on;
  on.num_workers = 0;
  on.cache_capacity = 512;
  CompletenessService service_on(on);
  ASSERT_OK_AND_ASSIGN(handle_on,
                       service_on.RegisterSetting(MakeWitnessSetting(8)));
  ASSERT_OK_AND_ASSIGN(resolved_on, service_on.shard_options(handle_on));
  EXPECT_EQ(resolved_on.cache_capacity, 512u);
}

}  // namespace
}  // namespace relcomp
