// Tests for the logic substrate: 3CNF, QBF, gadget relations, circuits,
// 2-head DFAs, and FD implication.
#include <gtest/gtest.h>

#include "logic/circuit.h"
#include "logic/cnf.h"
#include "logic/fd.h"
#include "logic/gadgets.h"
#include "logic/qbf.h"
#include "logic/two_head_dfa.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::V;

TEST(CnfTest, EvalAndSatisfiability) {
  // (x0 | x1 | !x2) & (!x0 | !x0 | !x0)
  Cnf3 cnf;
  cnf.num_vars = 3;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Pos(1), Lit::Neg(2)});
  cnf.clauses.push_back({Lit::Neg(0), Lit::Neg(0), Lit::Neg(0)});
  EXPECT_TRUE(cnf.Eval(0b010));   // x1 = 1, x0 = 0
  EXPECT_FALSE(cnf.Eval(0b001));  // x0 = 1 kills clause 2
  EXPECT_TRUE(cnf.IsSatisfiable());
}

TEST(CnfTest, UnsatisfiableFormula) {
  // x0 & !x0 via two unit-ish clauses.
  Cnf3 cnf;
  cnf.num_vars = 1;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Pos(0), Lit::Pos(0)});
  cnf.clauses.push_back({Lit::Neg(0), Lit::Neg(0), Lit::Neg(0)});
  EXPECT_FALSE(cnf.IsSatisfiable());
}

TEST(CnfTest, EmptyCnfIsTrue) {
  Cnf3 cnf;
  cnf.num_vars = 2;
  EXPECT_TRUE(cnf.Eval(0));
  EXPECT_TRUE(cnf.IsSatisfiable());
}

TEST(CnfTest, RandomCnfDeterministic) {
  Cnf3 a = RandomCnf3(4, 6, 42);
  Cnf3 b = RandomCnf3(4, 6, 42);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(QbfTest, ForallExistsTrue) {
  // ∀x0 ∃x1: (x0 | x1 | x1) & (!x0 | !x1 | !x1) — pick x1 = !x0.
  Cnf3 cnf;
  cnf.num_vars = 2;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Pos(1), Lit::Pos(1)});
  cnf.clauses.push_back({Lit::Neg(0), Lit::Neg(1), Lit::Neg(1)});
  EXPECT_TRUE(MakeForallExists(1, 1, cnf).Eval());
}

TEST(QbfTest, ForallExistsFalse) {
  // ∀x0 ∃x1: x0 — fails at x0 = 0.
  Cnf3 cnf;
  cnf.num_vars = 2;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Pos(0), Lit::Pos(0)});
  EXPECT_FALSE(MakeForallExists(1, 1, cnf).Eval());
}

TEST(QbfTest, SigmaThree) {
  // ∃x0 ∀x1 ∃x2: (x0) & (x1 | x2 | x2): pick x0 = 1, x2 = 1.
  Cnf3 cnf;
  cnf.num_vars = 3;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Pos(0), Lit::Pos(0)});
  cnf.clauses.push_back({Lit::Pos(1), Lit::Pos(2), Lit::Pos(2)});
  EXPECT_TRUE(MakeExistsForallExists(1, 1, 1, cnf).Eval());
  // ∃x0 ∀x1 ∃x2: (x1): false — x1 = 0 kills it.
  Cnf3 cnf2;
  cnf2.num_vars = 3;
  cnf2.clauses.push_back({Lit::Pos(1), Lit::Pos(1), Lit::Pos(1)});
  EXPECT_FALSE(MakeExistsForallExists(1, 1, 1, cnf2).Eval());
}

TEST(QbfTest, PiFour) {
  // ∀x0 ∃x1 ∀x2 ∃x3: (x1 | x3 | x3) — trivially satisfiable inner.
  Cnf3 cnf;
  cnf.num_vars = 4;
  cnf.clauses.push_back({Lit::Pos(1), Lit::Pos(3), Lit::Pos(3)});
  EXPECT_TRUE(MakeForallExistsForallExists(1, 1, 1, 1, cnf).Eval());
  // ∀x0 ∃x1 ∀x2 ∃x3: (x2) — false.
  Cnf3 cnf2;
  cnf2.num_vars = 4;
  cnf2.clauses.push_back({Lit::Pos(2), Lit::Pos(2), Lit::Pos(2)});
  EXPECT_FALSE(MakeForallExistsForallExists(1, 1, 1, 1, cnf2).Eval());
}

TEST(GadgetTest, RelationsMatchFig2) {
  DatabaseSchema schema;
  GadgetNames names;
  AddGadgetSchemas(&schema, names);
  Instance db(schema);
  FillGadgetInstance(&db, names);
  EXPECT_EQ(db.at("R01").size(), 2u);
  EXPECT_EQ(db.at("Ror").size(), 4u);
  EXPECT_EQ(db.at("Rand").size(), 4u);
  EXPECT_EQ(db.at("Rnot").size(), 2u);
  EXPECT_TRUE(db.at("Ror").Contains({I(0), I(1), I(1)}));
  EXPECT_TRUE(db.at("Rand").Contains({I(0), I(1), I(0)}));
  EXPECT_TRUE(db.at("Rnot").Contains({I(1), I(0)}));
}

TEST(GadgetTest, CnfEvaluationThroughGadgets) {
  // Encode ψ = (x0 | !x1 | x1) as CQ atoms and check the computed w for all
  // assignments against direct evaluation.
  DatabaseSchema schema;
  GadgetNames names;
  AddGadgetSchemas(&schema, names);
  Instance db(schema);
  FillGadgetInstance(&db, names);

  Cnf3 cnf;
  cnf.num_vars = 2;
  cnf.clauses.push_back({Lit::Pos(0), Lit::Neg(1), Lit::Pos(1)});

  for (uint64_t a = 0; a < 4; ++a) {
    int32_t next_var = 10;
    std::vector<RelAtom> atoms;
    std::vector<CTerm> var_terms = {CTerm(I((a >> 0) & 1)),
                                    CTerm(I((a >> 1) & 1))};
    CTerm w = AppendCnfEvaluation(cnf, var_terms, names, &next_var, &atoms);
    ConjunctiveQuery q({w}, std::move(atoms));
    ASSERT_OK_AND_ASSIGN(out, q.Eval(db));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.rows()[0][0], I(cnf.Eval(a) ? 1 : 0)) << "assignment " << a;
  }
}

TEST(GadgetTest, MultiClauseConjunction) {
  DatabaseSchema schema;
  GadgetNames names;
  AddGadgetSchemas(&schema, names);
  Instance db(schema);
  FillGadgetInstance(&db, names);

  Cnf3 cnf = RandomCnf3(3, 4, 7);
  for (uint64_t a = 0; a < 8; ++a) {
    int32_t next_var = 10;
    std::vector<RelAtom> atoms;
    std::vector<CTerm> var_terms;
    for (int i = 0; i < 3; ++i) var_terms.push_back(CTerm(I((a >> i) & 1)));
    CTerm w = AppendCnfEvaluation(cnf, var_terms, names, &next_var, &atoms);
    ConjunctiveQuery q({w}, std::move(atoms));
    ASSERT_OK_AND_ASSIGN(out, q.Eval(db));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.rows()[0][0], I(cnf.Eval(a) ? 1 : 0));
  }
}

TEST(CircuitTest, EvalSmallCircuit) {
  // out = (x0 & x1) | !x0.
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});   // g0 = x0
  c.AddGate({GateType::kIn, -1, -1});   // g1 = x1
  c.AddGate({GateType::kAnd, 0, 1});    // g2
  c.AddGate({GateType::kNot, 0, -1});   // g3
  c.AddGate({GateType::kOr, 2, 3});     // g4
  EXPECT_OK(c.Validate());
  EXPECT_EQ(c.NumInputs(), 2);
  EXPECT_TRUE(c.Eval(0b00));
  EXPECT_TRUE(c.Eval(0b11));
  EXPECT_FALSE(c.Eval(0b01));  // x0 = 1, x1 = 0
  EXPECT_FALSE(c.IsTautology());
}

TEST(CircuitTest, TautologyDetection) {
  // out = x0 | !x0.
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kNot, 0, -1});
  c.AddGate({GateType::kOr, 0, 1});
  EXPECT_TRUE(c.IsTautology());
}

TEST(CircuitTest, ForcedTautologyGenerator) {
  Circuit c = RandomCircuit(3, 6, 99, /*force_taut=*/true);
  EXPECT_OK(c.Validate());
  EXPECT_TRUE(c.IsTautology());
}

TEST(CircuitTest, ValidationCatchesForwardEdge) {
  Circuit c;
  c.AddGate({GateType::kNot, 0, -1});  // input 0 does not precede it
  EXPECT_FALSE(c.Validate().ok());
}

TEST(TwoHeadDfaTest, FirstSymbolOneLanguage) {
  // Accepts words whose first symbol is 1 (both heads start on it).
  TwoHeadDfa dfa(2, 0, 1);
  dfa.AddTransition(0, HeadSymbol::kOne, HeadSymbol::kOne, {1, 1, 0});
  EXPECT_TRUE(dfa.Accepts("1"));
  EXPECT_TRUE(dfa.Accepts("10"));
  EXPECT_FALSE(dfa.Accepts("0"));
  EXPECT_FALSE(dfa.Accepts(""));
  EXPECT_FALSE(dfa.EmptyUpTo(2));
}

TEST(TwoHeadDfaTest, EvenLengthLanguage) {
  // |w| even: head 2 walks the word toggling state parity; head 1 never
  // moves. Accept when head 2 reaches the end in even parity.
  TwoHeadDfa dfa(3, 0, 2);
  for (HeadSymbol s1 :
       {HeadSymbol::kZero, HeadSymbol::kOne, HeadSymbol::kEpsilon}) {
    for (HeadSymbol s2 : {HeadSymbol::kZero, HeadSymbol::kOne}) {
      dfa.AddTransition(0, s1, s2, {1, 0, 1});
      dfa.AddTransition(1, s1, s2, {0, 0, 1});
    }
    dfa.AddTransition(0, s1, HeadSymbol::kEpsilon, {2, 0, 0});
  }
  EXPECT_TRUE(dfa.Accepts(""));
  EXPECT_FALSE(dfa.Accepts("1"));
  EXPECT_TRUE(dfa.Accepts("10"));
  EXPECT_FALSE(dfa.Accepts("101"));
  EXPECT_TRUE(dfa.Accepts("1010"));
}

TEST(TwoHeadDfaTest, EmptyLanguage) {
  TwoHeadDfa dfa(2, 0, 1);  // no transitions at all
  EXPECT_TRUE(dfa.EmptyUpTo(4));
}

TEST(FdTest, ClosureComputation) {
  // {0} → 1, {1} → 2: closure of {0} is {0, 1, 2}.
  std::vector<Fd> sigma = {{{0}, 1}, {{1}, 2}};
  std::vector<int> closure = FdClosure({0}, sigma, 4);
  EXPECT_EQ(closure, (std::vector<int>{0, 1, 2}));
}

TEST(FdTest, ImpliesTransitively) {
  std::vector<Fd> sigma = {{{0}, 1}, {{1}, 2}};
  EXPECT_TRUE(FdImplies(sigma, {{0}, 2}, 4));
  EXPECT_FALSE(FdImplies(sigma, {{2}, 0}, 4));
  EXPECT_TRUE(FdImplies(sigma, {{0}, 0}, 4));  // reflexivity
}

TEST(FdTest, CompositeLhs) {
  std::vector<Fd> sigma = {{{0, 1}, 2}};
  EXPECT_TRUE(FdImplies(sigma, {{0, 1}, 2}, 3));
  EXPECT_FALSE(FdImplies(sigma, {{0}, 2}, 3));
}

}  // namespace
}  // namespace relcomp
