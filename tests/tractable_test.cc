// Tests for the Section 7 tractable-case wrappers.
#include <gtest/gtest.h>

#include "core/tractable.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::V;

struct BoolFixture {
  PartiallyClosedSetting setting;
  Query q;

  BoolFixture() {
    setting.schema.AddRelation(
        RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
    setting.master_schema.AddRelation(
        RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Bm", {I(0)});
    setting.dm.AddTuple("Bm", {I(1)});
    ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
    setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                             std::vector<int>{0});
    q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));
  }
};

TEST(TractableTest, RegimeAcceptsFewVariables) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  TractabilityCheck check = CheckDataComplexityRegime(fx.q, t, 4);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(TractableTest, RegimeRejectsManyVariables) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  for (int i = 0; i < 6; ++i) t.at("B").AddRow({Cell(V(i))});
  TractabilityCheck check = CheckDataComplexityRegime(fx.q, t, 4);
  EXPECT_FALSE(check.ok);
}

TEST(TractableTest, RegimeRejectsFo) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  FoQuery fo({}, FoFormula::Not(FoFormula::Atom({"B", {I(0)}})));
  TractabilityCheck check = CheckDataComplexityRegime(Query::Fo(fo), t, 4);
  EXPECT_FALSE(check.ok);
}

TEST(TractableTest, WrappersAgreeWithGeneralDeciders) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  t.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(strong_t, RcdpStrongTractable(fx.q, t, fx.setting));
  ASSERT_OK_AND_ASSIGN(strong_g, RcdpStrong(fx.q, t, fx.setting));
  EXPECT_EQ(strong_t, strong_g);
  ASSERT_OK_AND_ASSIGN(weak_t, RcdpWeakTractable(fx.q, t, fx.setting));
  ASSERT_OK_AND_ASSIGN(weak_g, RcdpWeak(fx.q, t, fx.setting));
  EXPECT_EQ(weak_t, weak_g);
  ASSERT_OK_AND_ASSIGN(viable_t, RcdpViableTractable(fx.q, t, fx.setting));
  ASSERT_OK_AND_ASSIGN(viable_g, RcdpViable(fx.q, t, fx.setting));
  EXPECT_EQ(viable_t, viable_g);
  ASSERT_OK_AND_ASSIGN(minp_t, MinpStrongTractable(fx.q, t, fx.setting));
  ASSERT_OK_AND_ASSIGN(minp_g, MinpStrong(fx.q, t, fx.setting));
  EXPECT_EQ(minp_t, minp_g);
}

TEST(TractableTest, FpAllowedOnlyInWeakModel) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"B", {V(0)}}}, {}});
  p.set_output("T");
  Query fp = Query::Fp(p);
  EXPECT_FALSE(RcdpStrongTractable(fp, t, fx.setting).ok());
  EXPECT_TRUE(RcdpWeakTractable(fp, t, fx.setting).ok());
}

TEST(TractableTest, OutOfRegimeFailsLoudly) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  for (int i = 0; i < 6; ++i) t.at("B").AddRow({Cell(V(i))});
  Result<bool> r = RcdpStrongTractable(fx.q, t, fx.setting, 4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TractableTest, MinpWeakCqWrapper) {
  BoolFixture fx;
  CInstance empty(fx.setting.schema);
  ASSERT_OK_AND_ASSIGN(min_t, MinpWeakCqTractable(fx.q, empty, fx.setting));
  ASSERT_OK_AND_ASSIGN(min_g, MinpWeakCq(fx.q, empty, fx.setting));
  EXPECT_EQ(min_t, min_g);
}

}  // namespace
}  // namespace relcomp
