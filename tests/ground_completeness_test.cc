// Tests for ground-instance relative completeness (the Lemma 4.2/4.3
// characterization), including the Prop 3.1 FD-implication reduction swept
// against Armstrong closure.
#include <gtest/gtest.h>

#include "core/ground.h"
#include "reductions/prop31_fd.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

// A minimal MDM-style setting: Visit(nhs, city) bounded by master for EDI.
struct VisitFixture {
  PartiallyClosedSetting setting;
  Query q_edi;  // Q(n) :- Visit(n, "EDI")

  VisitFixture() {
    setting.schema.AddRelation(RelationSchema(
        "Visit", {Attribute{"nhs", Domain::Infinite()},
                  Attribute{"city", Domain::Finite({S("EDI"), S("LON")})}}));
    setting.master_schema.AddRelation(
        RelationSchema("Pm", {Attribute{"nhs", Domain::Infinite()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Pm", {S("n1")});
    setting.dm.AddTuple("Pm", {S("n2")});
    ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1)}}},
                          {CondAtom{V(1), false, S("EDI")}});
    setting.ccs.emplace_back("edi", std::move(cc_q), "Pm",
                             std::vector<int>{0});
    q_edi = Query::Cq(ConjunctiveQuery(
        {CTerm(V(0))}, {RelAtom{"Visit", {V(0), S("EDI")}}}));
  }
};

TEST(GroundCompletenessTest, CompleteWhenAllMasterRowsPresent) {
  VisitFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("n1"), S("EDI")});
  db.AddTuple("Visit", {S("n2"), S("EDI")});
  ASSERT_OK_AND_ASSIGN(complete,
                       IsCompleteGroundAuto(fx.q_edi, db, fx.setting));
  EXPECT_TRUE(complete);
}

TEST(GroundCompletenessTest, IncompleteWhenMasterRowMissing) {
  VisitFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("n1"), S("EDI")});
  CompletenessWitness witness;
  ASSERT_OK_AND_ASSIGN(complete, IsCompleteGroundAuto(fx.q_edi, db, fx.setting,
                                                      {}, nullptr, &witness));
  EXPECT_FALSE(complete);
  // The witness extension adds the missing n2 visit.
  EXPECT_EQ(witness.answer, Tuple({S("n2")}));
}

TEST(GroundCompletenessTest, OpenWorldQueryNeverComplete) {
  VisitFixture fx;
  Query q_lon = Query::Cq(ConjunctiveQuery(
      {CTerm(V(0))}, {RelAtom{"Visit", {V(0), S("LON")}}}));
  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("n1"), S("LON")});
  ASSERT_OK_AND_ASSIGN(complete, IsCompleteGroundAuto(q_lon, db, fx.setting));
  EXPECT_FALSE(complete);  // London is unconstrained: new names can appear
}

TEST(GroundCompletenessTest, NotPartiallyClosedIsNotComplete) {
  VisitFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("unknown"), S("EDI")});  // violates the CC
  ASSERT_OK_AND_ASSIGN(complete,
                       IsCompleteGroundAuto(fx.q_edi, db, fx.setting));
  EXPECT_FALSE(complete);
}

TEST(GroundCompletenessTest, UcqDisjunctsAllChecked) {
  VisitFixture fx;
  // Q(n) :- Visit(n, EDI) ∪ Q(n) :- Visit(n, LON). The LON disjunct is
  // open-world, so the UCQ is incomplete even with all EDI rows present.
  UnionQuery ucq;
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))},
                                   {RelAtom{"Visit", {V(0), S("EDI")}}}));
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))},
                                   {RelAtom{"Visit", {V(0), S("LON")}}}));
  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("n1"), S("EDI")});
  db.AddTuple("Visit", {S("n2"), S("EDI")});
  ASSERT_OK_AND_ASSIGN(
      complete, IsCompleteGroundAuto(Query::Ucq(ucq), db, fx.setting));
  EXPECT_FALSE(complete);
}

TEST(GroundCompletenessTest, FoAndFpAreUndecidable) {
  VisitFixture fx;
  Instance db(fx.setting.schema);
  FoQuery fo({}, FoFormula::Not(FoFormula::Atom({"Visit", {S("a"), S("b")}})));
  Result<bool> r = IsCompleteGroundAuto(Query::Fo(fo), db, fx.setting);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUndecidable);

  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"Visit", {V(0), V(1)}}}, {}});
  p.set_output("T");
  Result<bool> r2 = IsCompleteGroundAuto(Query::Fp(p), db, fx.setting);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kUndecidable);
}

TEST(GroundCompletenessTest, EmptyInstanceCompleteForContradictoryQuery) {
  VisitFixture fx;
  // Q(n) :- Visit(n, c), c = EDI, c = LON — unsatisfiable builtins.
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1)}}},
      {CondAtom{V(1), false, S("EDI")}, CondAtom{V(1), false, S("LON")}}));
  Instance db(fx.setting.schema);
  ASSERT_OK_AND_ASSIGN(complete, IsCompleteGroundAuto(q, db, fx.setting));
  EXPECT_TRUE(complete);
}

// ---------------------------------------------------------------------------
// Prop 3.1: FD implication ⇔ completeness of I∅, against Armstrong closure.
// ---------------------------------------------------------------------------

class Prop31Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop31Sweep, FdImplicationMatchesArmstrong) {
  constexpr int kAttrs = 4;
  std::vector<Fd> theta = RandomFds(kAttrs, 3, GetParam());
  Fd phi;
  phi.lhs = {static_cast<int>(GetParam() % kAttrs)};
  phi.rhs = static_cast<int>((GetParam() / 2) % kAttrs);
  GadgetProblem gadget = BuildFdImplicationGadget(theta, phi, kAttrs);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      complete,
      IsCompleteGroundAuto(gadget.query, gadget.ground, gadget.setting));
  bool implied = FdImplies(theta, phi, kAttrs);
  EXPECT_EQ(complete, implied)
      << "theta[0]=" << (theta.empty() ? "-" : theta[0].ToString())
      << " phi=" << phi.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop31Sweep,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace relcomp
