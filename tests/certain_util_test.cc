// Tests for certain answers over Mod(T, Dm, V), plus the Status/Result and
// interner utilities.
#include <gtest/gtest.h>

#include "core/certain.h"
#include "test_util.h"
#include "util/interner.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

struct BoolFixture {
  PartiallyClosedSetting setting;
  Query q;

  BoolFixture() {
    setting.schema.AddRelation(
        RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
    setting.master_schema.AddRelation(
        RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Bm", {I(0)});
    setting.dm.AddTuple("Bm", {I(1)});
    ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
    setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                             std::vector<int>{0});
    q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));
  }
};

TEST(CertainAnswersTest, GroundInstanceIsItsOwnCertainty) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(1))});
  AdomContext adom = AdomContext::Build(fx.setting, t, &fx.q);
  ASSERT_OK_AND_ASSIGN(result,
                       CertainAnswers(fx.q, t, fx.setting, adom));
  EXPECT_TRUE(result.mod_nonempty);
  EXPECT_EQ(result.answers.size(), 1u);
  EXPECT_TRUE(result.answers.Contains({I(1)}));
}

TEST(CertainAnswersTest, VariableRowIntersectsToConstantPart) {
  // T = {(x), (1)}: worlds {0,1} and {1}; certain answer = {1}.
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  t.at("B").AddRow({Cell(I(1))});
  AdomContext adom = AdomContext::Build(fx.setting, t, &fx.q);
  ASSERT_OK_AND_ASSIGN(result,
                       CertainAnswers(fx.q, t, fx.setting, adom));
  EXPECT_TRUE(result.mod_nonempty);
  EXPECT_EQ(result.answers.size(), 1u);
  EXPECT_TRUE(result.answers.Contains({I(1)}));
}

TEST(CertainAnswersTest, LoneVariableHasNoCertainAnswers) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  AdomContext adom = AdomContext::Build(fx.setting, t, &fx.q);
  ASSERT_OK_AND_ASSIGN(result,
                       CertainAnswers(fx.q, t, fx.setting, adom));
  EXPECT_TRUE(result.mod_nonempty);
  EXPECT_TRUE(result.answers.empty());
}

TEST(CertainAnswersTest, InconsistentCInstanceReported) {
  BoolFixture fx;
  fx.setting.dm.at("Bm").Erase({I(0)});
  fx.setting.dm.at("Bm").Erase({I(1)});
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  AdomContext adom = AdomContext::Build(fx.setting, t, &fx.q);
  ASSERT_OK_AND_ASSIGN(result,
                       CertainAnswers(fx.q, t, fx.setting, adom));
  EXPECT_FALSE(result.mod_nonempty);
}

TEST(CertainAnswersTest, ConditionRestrictsWorlds) {
  // T = {(x) | x != 0}: the only world is {1}; certain answer = {1}.
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow(CRow{{Cell(V(0))}, Condition::VarNeqConst(V(0), I(0))});
  AdomContext adom = AdomContext::Build(fx.setting, t, &fx.q);
  ASSERT_OK_AND_ASSIGN(result,
                       CertainAnswers(fx.q, t, fx.setting, adom));
  EXPECT_TRUE(result.mod_nonempty);
  // Worlds: x=0 drops the row → {}; x=1 → {1}. Intersection is empty.
  EXPECT_TRUE(result.answers.empty());
}

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("boom"), std::string::npos);
  EXPECT_EQ(std::string(StatusCodeName(StatusCode::kUndecidable)),
            "Undecidable");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);
  Result<int> bad = Status::NotFound("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(InternerTest, StableIdsAndNames) {
  SymbolId a = InternSymbol("alpha-test-symbol");
  SymbolId b = InternSymbol("alpha-test-symbol");
  EXPECT_EQ(a, b);
  EXPECT_EQ(SymbolName(a), "alpha-test-symbol");
  SymbolId c = InternSymbol("beta-test-symbol");
  EXPECT_NE(a, c);
}

TEST(StatsTest, ToStringListsCounters) {
  SearchStats stats;
  stats.valuations = 3;
  stats.worlds = 2;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("valuations=3"), std::string::npos);
  EXPECT_NE(s.find("worlds=2"), std::string::npos);
}

TEST(WitnessTest, ToStringMentionsPieces) {
  BoolFixture fx;
  CompletenessWitness w;
  w.note = "a note";
  w.world = Instance(fx.setting.schema);
  w.world.AddTuple("B", {I(0)});
  w.extension = w.world;
  w.extension.AddTuple("B", {I(1)});
  w.answer = {I(1)};
  std::string s = w.ToString();
  EXPECT_NE(s.find("a note"), std::string::npos);
  EXPECT_NE(s.find("(1)"), std::string::npos);
}

}  // namespace
}  // namespace relcomp
