// Tests for the remaining executable reductions: SUCCINCT-TAUT → RCDPʷ(FP)
// (Thm 5.1(2)) and 2-head DFA → FP satisfiability under FDs (Lemma 4.6).
#include <gtest/gtest.h>

#include "core/rcdp.h"
#include "reductions/lemma46_dfa.h"
#include "reductions/thm51_fp.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::V;

TEST(Thm51FpTest, TautologyCircuitIsWeaklyComplete) {
  // x0 | !x0.
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kNot, 0, -1});
  c.AddGate({GateType::kOr, 0, 1});
  ASSERT_TRUE(c.IsTautology());
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      weak, RcdpWeakGround(gadget.query, gadget.ground, gadget.setting));
  EXPECT_TRUE(weak);
}

TEST(Thm51FpTest, NonTautologyIsNotWeaklyComplete) {
  // Just x0.
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});
  ASSERT_FALSE(c.IsTautology());
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  ASSERT_OK_AND_ASSIGN(
      weak, RcdpWeakGround(gadget.query, gadget.ground, gadget.setting));
  EXPECT_FALSE(weak);
}

TEST(Thm51FpTest, AndOfInputsNotTaut) {
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kAnd, 0, 1});
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  ASSERT_OK_AND_ASSIGN(
      weak, RcdpWeakGround(gadget.query, gadget.ground, gadget.setting));
  EXPECT_FALSE(weak);
}

class CircuitSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CircuitSweep, WeakCompletenessMatchesTautologyOracle) {
  bool force_taut = GetParam() % 2 == 0;
  Circuit c = RandomCircuit(2, 4, GetParam() * 31 + 5, force_taut);
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  ASSERT_OK_AND_ASSIGN(
      weak, RcdpWeakGround(gadget.query, gadget.ground, gadget.setting));
  EXPECT_EQ(weak, c.IsTautology()) << c.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitSweep,
                         ::testing::Range<uint64_t>(0, 10));

TEST(Thm51FpTest, QueryEvaluatesCircuitOnBaseWorld) {
  // On the base world (A0 = 1 only), the FP query returns exactly the
  // satisfying inputs of the circuit.
  Circuit c;
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kIn, -1, -1});
  c.AddGate({GateType::kOr, 0, 1});
  GadgetProblem gadget = BuildSuccinctTautGadget(c);
  ASSERT_OK_AND_ASSIGN(out, gadget.query.Eval(gadget.ground));
  EXPECT_EQ(out.size(), 3u);  // 01, 10, 11
  EXPECT_FALSE(out.Contains({I(0), I(0)}));
}

// ---------------------------------------------------------------------------
// Lemma 4.6: the FP simulation of a 2-head DFA.
// ---------------------------------------------------------------------------

TwoHeadDfa FirstSymbolOneDfa() {
  // Accepts words whose first symbol is 1 (both heads start on it).
  TwoHeadDfa dfa(2, 0, 1);
  dfa.AddTransition(0, HeadSymbol::kOne, HeadSymbol::kOne, {1, 1, 0});
  return dfa;
}

TEST(Lemma46Test, WordEncodingSatisfiesFds) {
  TwoHeadDfa dfa = FirstSymbolOneDfa();
  GadgetProblem gadget = BuildDfaSatisfiabilityGadget(dfa);
  Instance word = EncodeWord(gadget.setting.schema, "101");
  ASSERT_OK_AND_ASSIGN(
      closed, SatisfiesCCs(word, gadget.setting.dm, gadget.setting.ccs));
  EXPECT_TRUE(closed);
}

TEST(Lemma46Test, FpSimulationMatchesAutomaton) {
  TwoHeadDfa dfa = FirstSymbolOneDfa();
  GadgetProblem gadget = BuildDfaSatisfiabilityGadget(dfa);
  for (const char* word : {"1", "10", "0", "01", "11", "00"}) {
    Instance encoded = EncodeWord(gadget.setting.schema, word);
    ASSERT_OK_AND_ASSIGN(accept, gadget.query.Eval(encoded));
    EXPECT_EQ(!accept.empty(), dfa.Accepts(word)) << "word " << word;
  }
}

TEST(Lemma46Test, TwoHeadComparisonAutomaton) {
  // Accepts words starting with "10": advance head 2 over the first symbol,
  // then require head1 = 1, head2 = 0 at offsets (0, 1).
  TwoHeadDfa dfa(3, 0, 2);
  dfa.AddTransition(0, HeadSymbol::kZero, HeadSymbol::kZero, {1, 0, 1});
  dfa.AddTransition(0, HeadSymbol::kOne, HeadSymbol::kOne, {1, 0, 1});
  dfa.AddTransition(1, HeadSymbol::kOne, HeadSymbol::kZero, {2, 1, 1});
  GadgetProblem gadget = BuildDfaSatisfiabilityGadget(dfa);
  for (const char* word : {"10", "100", "11", "01", "1"}) {
    Instance encoded = EncodeWord(gadget.setting.schema, word);
    ASSERT_OK_AND_ASSIGN(accept, gadget.query.Eval(encoded));
    EXPECT_EQ(!accept.empty(), dfa.Accepts(word)) << "word " << word;
  }
}

TEST(Lemma46Test, EmptinessUpToBoundViaFp) {
  // The automaton accepting nothing: FP finds no accepting instance among
  // encodings of words up to length 3.
  TwoHeadDfa dfa(2, 0, 1);  // no transitions
  GadgetProblem gadget = BuildDfaSatisfiabilityGadget(dfa);
  EXPECT_TRUE(dfa.EmptyUpTo(3));
  for (int len = 0; len <= 3; ++len) {
    for (uint64_t bits = 0; bits < (uint64_t{1} << len); ++bits) {
      std::string word;
      for (int i = 0; i < len; ++i) word += ((bits >> i) & 1) ? '1' : '0';
      Instance encoded = EncodeWord(gadget.setting.schema, word);
      ASSERT_OK_AND_ASSIGN(accept, gadget.query.Eval(encoded));
      EXPECT_TRUE(accept.empty());
    }
  }
}

TEST(Lemma46Test, FdViolatingInstanceDetected) {
  TwoHeadDfa dfa = FirstSymbolOneDfa();
  GadgetProblem gadget = BuildDfaSatisfiabilityGadget(dfa);
  Instance bad = EncodeWord(gadget.setting.schema, "10");
  // Two letters at position 0 violates A → V on P.
  bad.AddTuple("P", {I(0), I(0)});
  ASSERT_OK_AND_ASSIGN(
      closed, SatisfiesCCs(bad, gadget.setting.dm, gadget.setting.ccs));
  EXPECT_FALSE(closed);
}

}  // namespace
}  // namespace relcomp
