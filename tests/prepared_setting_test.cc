// PreparedSetting: cached artifacts must be indistinguishable from per-call
// recomputation — same Adom, same CC verdicts, same decider answers — and
// fingerprints must be stable and discriminating.
#include <gtest/gtest.h>

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "core/fingerprint.h"
#include "core/prepared_setting.h"
#include "reductions/examples_fig1.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::S;

TEST(PreparedSettingTest, PrepareValidatesTheSetting) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(prepared, PreparedSetting::Prepare(fx.setting));
  EXPECT_EQ(prepared.ccs().size(), fx.setting.ccs.size());
  EXPECT_EQ(prepared.cc_projections().size(), fx.setting.ccs.size());

  // A CC whose projection width disagrees with its head arity must fail.
  PartiallyClosedSetting broken = fx.setting;
  ContainmentConstraint cc = broken.ccs.front();
  broken.ccs.push_back(ContainmentConstraint(
      "bad", cc.q(), cc.master_rel(),
      std::vector<int>(cc.master_cols().size() + 1, 0)));
  EXPECT_FALSE(PreparedSetting::Prepare(broken).ok());
}

TEST(PreparedSettingTest, AdomFromSeedMatchesDirectBuild) {
  PatientsFixture fx = MakePatientsFixture();
  AdomSeed seed = AdomContext::SeedFor(fx.setting);
  for (const Query* q : {&fx.q1, &fx.q2, &fx.q4}) {
    AdomContext direct = AdomContext::Build(fx.setting, fx.ctable, q);
    AdomContext seeded = AdomContext::BuildFromSeed(seed, fx.ctable, q);
    EXPECT_EQ(direct.values(), seeded.values());
    EXPECT_EQ(direct.base(), seeded.base());
    EXPECT_EQ(direct.fresh(), seeded.fresh());
  }
  // And through the PreparedSetting convenience.
  ASSERT_OK_AND_ASSIGN(prepared, PreparedSetting::Prepare(fx.setting));
  AdomContext via_prepared = prepared.BuildAdom(fx.ctable, &fx.q1);
  AdomContext direct = AdomContext::Build(fx.setting, fx.ctable, &fx.q1);
  EXPECT_EQ(direct.values(), via_prepared.values());
}

TEST(PreparedSettingTest, CachedProjectionsMatchDirectCcChecks) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(prepared, PreparedSetting::Prepare(fx.setting));

  // The ground rows satisfy V; a visit by an unknown patient violates the
  // name CC only through the master projection — both paths must agree.
  Instance bad = fx.ground;
  bad.AddTuple("MVisit", {S("000-00-000"), S("Nobody"), S("EDI"),
                          Value::Int(2000), S("M"), S("15/03/2015"),
                          S("Flu"), S("01")});
  for (const Instance* instance : {&fx.ground, &bad}) {
    ASSERT_OK_AND_ASSIGN(
        direct, SatisfiesCCs(*instance, fx.setting.dm, fx.setting.ccs));
    ASSERT_OK_AND_ASSIGN(cached, prepared.SatisfiesCCs(*instance));
    EXPECT_EQ(direct, cached);
  }
}

TEST(PreparedSettingTest, DecidersAgreeBetweenPreparedAndLegacyEntryPoints) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(prepared, PreparedSetting::Prepare(fx.setting));
  for (const Query* q : {&fx.q1, &fx.q2, &fx.q4}) {
    ASSERT_OK_AND_ASSIGN(legacy_strong, RcdpStrong(*q, fx.ctable, fx.setting));
    ASSERT_OK_AND_ASSIGN(prep_strong, RcdpStrong(*q, fx.ctable, prepared));
    EXPECT_EQ(legacy_strong, prep_strong) << (*q).ToString();

    ASSERT_OK_AND_ASSIGN(legacy_viable, RcdpViable(*q, fx.ctable, fx.setting));
    ASSERT_OK_AND_ASSIGN(prep_viable, RcdpViable(*q, fx.ctable, prepared));
    EXPECT_EQ(legacy_viable, prep_viable) << (*q).ToString();

    ASSERT_OK_AND_ASSIGN(legacy_minp,
                         MinpStrongGround(*q, fx.ground, fx.setting));
    ASSERT_OK_AND_ASSIGN(prep_minp, MinpStrongGround(*q, fx.ground, prepared));
    EXPECT_EQ(legacy_minp, prep_minp) << (*q).ToString();
  }
  ASSERT_OK_AND_ASSIGN(legacy_weak, RcdpWeak(fx.q4, fx.ctable, fx.setting));
  ASSERT_OK_AND_ASSIGN(prep_weak, RcdpWeak(fx.q4, fx.ctable, prepared));
  EXPECT_EQ(legacy_weak, prep_weak);
}

TEST(PreparedSettingTest, SearchStatsIdenticalAcrossEntryPoints) {
  // The prepared path must do the same logical work, not just reach the
  // same answer: every counter agrees with the legacy path.
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(prepared, PreparedSetting::Prepare(fx.setting));
  SearchStats legacy_stats, prep_stats;
  ASSERT_OK_AND_ASSIGN(legacy,
                       RcdpStrong(fx.q1, fx.ctable, fx.setting, {},
                                  &legacy_stats));
  ASSERT_OK_AND_ASSIGN(prep,
                       RcdpStrong(fx.q1, fx.ctable, prepared, {}, &prep_stats));
  EXPECT_EQ(legacy, prep);
  EXPECT_EQ(legacy_stats.valuations, prep_stats.valuations);
  EXPECT_EQ(legacy_stats.worlds, prep_stats.worlds);
  EXPECT_EQ(legacy_stats.extensions, prep_stats.extensions);
  EXPECT_EQ(legacy_stats.cc_checks, prep_stats.cc_checks);
  EXPECT_EQ(legacy_stats.query_evals, prep_stats.query_evals);
}

TEST(PreparedSettingTest, FingerprintsAreStableAndDiscriminating) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(a, PreparedSetting::Prepare(fx.setting));
  ASSERT_OK_AND_ASSIGN(b, PreparedSetting::Prepare(fx.setting));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), FingerprintSetting(fx.setting));

  // The acquisition setting differs only in master data — and in print.
  ASSERT_OK_AND_ASSIGN(c, PreparedSetting::Prepare(fx.acquisition));
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  EXPECT_NE(FingerprintQuery(fx.q1), FingerprintQuery(fx.q2));
  EXPECT_EQ(FingerprintQuery(fx.q1), FingerprintQuery(fx.q1));
  EXPECT_NE(FingerprintCInstance(fx.ctable),
            FingerprintCInstance(CInstance(fx.setting.schema)));
}

TEST(PreparedSettingTest, AllIndsClassificationIsCached) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(fig1, PreparedSetting::Prepare(fx.setting));
  EXPECT_EQ(fig1.all_inds(), AllInds(fx.setting.ccs));

  // A pure-IND setting flips the flag and unlocks the Cor 7.2 fast path.
  PartiallyClosedSetting ind;
  ind.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()}}));
  ind.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  ind.dm = Instance(ind.master_schema);
  ind.dm.AddTuple("Patientm", {S("p0")});
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}}}});
  ind.ccs.emplace_back("ind", std::move(proj), "Patientm",
                       std::vector<int>{0});
  ASSERT_OK_AND_ASSIGN(prepared_ind, PreparedSetting::Prepare(ind));
  EXPECT_TRUE(prepared_ind.all_inds());

  Query q = Query::Cq(ConjunctiveQuery({CTerm(VarId{0})},
                                       {RelAtom{"Visit", {VarId{0}}}}));
  ASSERT_OK_AND_ASSIGN(legacy, RcqpStrongInd(q, ind));
  ASSERT_OK_AND_ASSIGN(prep, RcqpStrongInd(q, prepared_ind));
  EXPECT_EQ(legacy, prep);
}

}  // namespace
}  // namespace relcomp
