// Unit tests for conjunctive-query evaluation (joins, builtins, safety) and
// the tableau-query view used by the completeness characterizations.
#include <gtest/gtest.h>

#include "query/cq.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

Instance PathInstance() {
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(2)});
  db.AddTuple("E", {I(2), I(3)});
  db.AddTuple("E", {I(3), I(4)});
  return db;
}

TEST(CqEvalTest, SingleAtomScan) {
  ConjunctiveQuery q({CTerm(V(0)), CTerm(V(1))},
                     {RelAtom{"E", {V(0), V(1)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 3u);
}

TEST(CqEvalTest, JoinOnSharedVariable) {
  // Q(x, z) :- E(x, y), E(y, z): paths of length 2.
  ConjunctiveQuery q({CTerm(V(0)), CTerm(V(2))},
                     {RelAtom{"E", {V(0), V(1)}},
                      RelAtom{"E", {V(1), V(2)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains({I(1), I(3)}));
  EXPECT_TRUE(out.Contains({I(2), I(4)}));
}

TEST(CqEvalTest, ConstantInAtomFilters) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {I(2), V(0)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(3)}));
}

TEST(CqEvalTest, EqualityBuiltin) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}},
                     {CondAtom{V(1), false, I(3)}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(2)}));
}

TEST(CqEvalTest, InequalityBuiltin) {
  // Distinct-endpoint pairs of edges sharing the source.
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(2)});
  db.AddTuple("E", {I(1), I(3)});
  ConjunctiveQuery q({CTerm(V(1)), CTerm(V(2))},
                     {RelAtom{"E", {V(0), V(1)}},
                      RelAtom{"E", {V(0), V(2)}}},
                     {CondAtom{V(1), true, V(2)}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(db));
  EXPECT_EQ(out.size(), 2u);  // (2,3) and (3,2)
}

TEST(CqEvalTest, ConstantHeadTerm) {
  ConjunctiveQuery q({CTerm(S("hit")), CTerm(V(0))},
                     {RelAtom{"E", {V(0), V(1)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains({S("hit"), I(1)}));
}

TEST(CqEvalTest, BooleanQueryEmptyHead) {
  ConjunctiveQuery q({}, {RelAtom{"E", {I(1), I(2)}}});
  ASSERT_OK_AND_ASSIGN(yes, q.Eval(PathInstance()));
  EXPECT_EQ(yes.size(), 1u);  // {()}
  ConjunctiveQuery q2({}, {RelAtom{"E", {I(9), I(9)}}});
  ASSERT_OK_AND_ASSIGN(no, q2.Eval(PathInstance()));
  EXPECT_TRUE(no.empty());
}

TEST(CqEvalTest, SelfJoinSameTuple) {
  ConjunctiveQuery q({CTerm(V(0))},
                     {RelAtom{"E", {V(0), V(1)}},
                      RelAtom{"E", {V(0), V(1)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 3u);
}

TEST(CqEvalTest, EmptyRelationGivesEmptyAnswer) {
  Instance db(testing::EdgeSchema());
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(db));
  EXPECT_TRUE(out.empty());
}

TEST(CqEvalTest, UnknownRelationFails) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"Zap", {V(0)}}});
  Result<Relation> r = q.Eval(PathInstance());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CqEvalTest, ArityMismatchFails) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0)}}});
  Result<Relation> r = q.Eval(PathInstance());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CqEvalTest, UnsafeHeadFails) {
  ConjunctiveQuery q({CTerm(V(7))}, {RelAtom{"E", {V(0), V(1)}}});
  Result<Relation> r = q.Eval(PathInstance());
  EXPECT_FALSE(r.ok());
}

TEST(CqEvalTest, UnsafeBuiltinFails) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}},
                     {CondAtom{V(9), true, I(0)}});
  Result<Relation> r = q.Eval(PathInstance());
  EXPECT_FALSE(r.ok());
}

TEST(CqTest, VarsAndConstantsCollection) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), I(7)}}},
                     {CondAtom{V(0), true, S("a")}});
  EXPECT_EQ(q.Vars().size(), 1u);
  EXPECT_EQ(q.Constants().size(), 2u);
}

TEST(CqTest, InstantiateTableau) {
  ConjunctiveQuery q({CTerm(V(0))},
                     {RelAtom{"E", {V(0), V(1)}},
                      RelAtom{"E", {V(1), I(9)}}});
  Valuation nu;
  nu.Bind(V(0), I(5));
  nu.Bind(V(1), I(6));
  ASSERT_OK_AND_ASSIGN(inst, q.InstantiateTableau(nu, testing::EdgeSchema()));
  EXPECT_EQ(inst.TotalTuples(), 2u);
  EXPECT_TRUE(inst.at("E").Contains({I(5), I(6)}));
  EXPECT_TRUE(inst.at("E").Contains({I(6), I(9)}));
}

TEST(CqTest, InstantiateHeadRequiresBindings) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}});
  Valuation nu;
  EXPECT_FALSE(q.InstantiateHead(nu).ok());
  nu.Bind(V(0), I(1));
  ASSERT_OK_AND_ASSIGN(head, q.InstantiateHead(nu));
  EXPECT_EQ(head, Tuple({I(1)}));
}

TEST(CqTest, BuiltinsSatisfiedChecks) {
  ConjunctiveQuery q({}, {RelAtom{"E", {V(0), V(1)}}},
                     {CondAtom{V(0), true, V(1)}});
  Valuation nu;
  nu.Bind(V(0), I(1));
  nu.Bind(V(1), I(1));
  ASSERT_OK_AND_ASSIGN(violated, q.BuiltinsSatisfied(nu));
  EXPECT_FALSE(violated);
  nu.Bind(V(1), I(2));
  ASSERT_OK_AND_ASSIGN(ok, q.BuiltinsSatisfied(nu));
  EXPECT_TRUE(ok);
}

TEST(CqTest, ToStringIsReadable) {
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), I(1)}}},
                     {CondAtom{V(0), true, I(2)}});
  std::string s = q.ToString();
  EXPECT_NE(s.find("E("), std::string::npos);
  EXPECT_NE(s.find("!="), std::string::npos);
}

}  // namespace
}  // namespace relcomp
