// CompletenessEngine: batch-vs-sequential result equality on a mixed
// RCDP/RCQP/MINP workload, memoization behavior, worker-count determinism,
// and the SearchStats aggregation path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/minp.h"
#include "core/rcdp.h"
#include "core/rcqp.h"
#include "engine/engine.h"
#include "reductions/examples_fig1.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::S;

/// A mixed workload over the Fig. 1 patients fixture: the tractable kinds
/// for Q1/Q2/Q4 on the wide MVisit schema (the weak-model extension sweep
/// and the RCQP witness search stay on the narrow audit fixture below).
std::vector<DecisionRequest> MixedWorkload(const PatientsFixture& fx) {
  std::vector<DecisionRequest> requests;
  const Query* queries[] = {&fx.q1, &fx.q2, &fx.q4};
  for (const Query* q : queries) {
    for (ProblemKind kind :
         {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
          ProblemKind::kRcqpWeak, ProblemKind::kMinpStrong,
          ProblemKind::kMinpViable}) {
      DecisionRequest request;
      request.kind = kind;
      request.query = *q;
      request.cinstance = fx.ctable;
      requests.push_back(std::move(request));
    }
  }
  DecisionRequest weak_q4;
  weak_q4.kind = ProblemKind::kRcdpWeak;
  weak_q4.query = fx.q4;
  weak_q4.cinstance = fx.ctable;
  requests.push_back(std::move(weak_q4));
  return requests;
}

using testing::AuditFixture;
using testing::MakeAuditFixture;

/// Every problem kind × both audit queries: the full RCDP/RCQP/MINP mix.
std::vector<DecisionRequest> AuditWorkload(const AuditFixture& fx) {
  std::vector<DecisionRequest> requests;
  for (const Query* q : {&fx.by_patient, &fx.all_cities}) {
    for (ProblemKind kind :
         {ProblemKind::kRcdpStrong, ProblemKind::kRcdpWeak,
          ProblemKind::kRcdpViable, ProblemKind::kRcqpStrong,
          ProblemKind::kRcqpWeak, ProblemKind::kMinpStrong,
          ProblemKind::kMinpViable, ProblemKind::kMinpWeak}) {
      DecisionRequest request;
      request.kind = kind;
      request.query = *q;
      request.cinstance = fx.audited;
      request.rcqp_max_tuples = 2;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

std::unique_ptr<CompletenessEngine> MakeEngine(
    const PartiallyClosedSetting& setting, size_t workers, size_t cache) {
  EngineOptions options;
  options.num_workers = workers;
  options.cache_capacity = cache;
  options.memoize = cache > 0;
  auto engine = CompletenessEngine::Create(setting, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

void ExpectSameDecisions(const std::vector<Decision>& a,
                         const std::vector<Decision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code())
        << "request " << i << ": " << a[i].status.ToString() << " vs "
        << b[i].status.ToString();
    if (a[i].status.ok() && b[i].status.ok()) {
      EXPECT_EQ(a[i].answer, b[i].answer) << "request " << i;
    }
  }
}

TEST(EngineTest, BatchMatchesSequentialOnMixedWorkload) {
  PatientsFixture fx = MakePatientsFixture();
  std::vector<DecisionRequest> workload = MixedWorkload(fx);

  // Sequential reference: no workers, no cache — every request computed
  // inline by the deciders.
  auto sequential = MakeEngine(fx.setting, /*workers=*/0, /*cache=*/0);
  std::vector<Decision> expected;
  expected.reserve(workload.size());
  for (const DecisionRequest& request : workload) {
    expected.push_back(sequential->Decide(request));
  }

  // Parallel batch with ≥ 4 workers and memoization on.
  auto parallel = MakeEngine(fx.setting, /*workers=*/4, /*cache=*/256);
  std::vector<Decision> actual = parallel->SubmitBatch(workload);
  ExpectSameDecisions(expected, actual);

  EngineCounters counters = parallel->counters();
  EXPECT_EQ(counters.requests, workload.size());
  EXPECT_EQ(counters.errors, 0u);
}

TEST(EngineTest, BatchMatchesSequentialOnAllProblemKinds) {
  AuditFixture fx = MakeAuditFixture();
  std::vector<DecisionRequest> workload = AuditWorkload(fx);

  auto sequential = MakeEngine(fx.setting, /*workers=*/0, /*cache=*/0);
  std::vector<Decision> expected;
  for (const DecisionRequest& request : workload) {
    expected.push_back(sequential->Decide(request));
  }
  for (const Decision& d : expected) {
    EXPECT_TRUE(d.status.ok()) << d.status.ToString();
  }

  auto parallel = MakeEngine(fx.setting, /*workers=*/4, /*cache=*/256);
  std::vector<Decision> actual = parallel->SubmitBatch(workload);
  ExpectSameDecisions(expected, actual);
}

TEST(EngineTest, BatchAgreesWithDirectDeciderCalls) {
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/4, /*cache=*/64);

  DecisionRequest strong;
  strong.kind = ProblemKind::kRcdpStrong;
  strong.query = fx.q1;
  strong.cinstance = fx.ctable;
  DecisionRequest weak;
  weak.kind = ProblemKind::kRcdpWeak;
  weak.query = fx.q4;
  weak.cinstance = fx.ctable;
  std::vector<Decision> decisions = engine->SubmitBatch({strong, weak});

  ASSERT_OK_AND_ASSIGN(direct_strong, RcdpStrong(fx.q1, fx.ctable, fx.setting));
  ASSERT_OK_AND_ASSIGN(direct_weak, RcdpWeak(fx.q4, fx.ctable, fx.setting));
  ASSERT_TRUE(decisions[0].status.ok()) << decisions[0].status.ToString();
  ASSERT_TRUE(decisions[1].status.ok()) << decisions[1].status.ToString();
  EXPECT_EQ(decisions[0].answer, direct_strong);
  EXPECT_EQ(decisions[1].answer, direct_weak);
  // Example 2.3 / 2.4: Q1 strongly complete, Q4 weakly but not strongly.
  EXPECT_TRUE(decisions[0].answer);
  EXPECT_TRUE(decisions[1].answer);
}

TEST(EngineTest, RepeatedQueriesHitTheCache) {
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/2, /*cache=*/64);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.q1;
  request.cinstance = fx.ctable;

  Decision first = engine->Decide(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.from_cache);

  Decision second = engine->Decide(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.answer, first.answer);

  EngineCounters counters = engine->counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.cache_misses, 1u);

  // A batch of duplicates is deduped at planning time: every occurrence is
  // served from the cache or coalesced onto one slot, never recomputed.
  std::vector<DecisionRequest> batch(8, request);
  std::vector<Decision> decisions = engine->SubmitBatch(batch);
  for (const Decision& d : decisions) {
    ASSERT_TRUE(d.status.ok());
    EXPECT_EQ(d.answer, first.answer);
  }
  EXPECT_GE(engine->counters().cache_hits, 8u);

  engine->ClearCache();
  Decision after_clear = engine->Decide(request);
  EXPECT_FALSE(after_clear.from_cache);
  EXPECT_EQ(after_clear.answer, first.answer);
}

TEST(EngineTest, DeterministicAcrossWorkerCounts) {
  AuditFixture fx = MakeAuditFixture();
  std::vector<DecisionRequest> workload = AuditWorkload(fx);
  // Duplicate the workload so cache races between identical requests are
  // exercised too.
  std::vector<DecisionRequest> doubled = workload;
  doubled.insert(doubled.end(), workload.begin(), workload.end());

  auto one = MakeEngine(fx.setting, /*workers=*/1, /*cache=*/128);
  std::vector<Decision> with_one = one->SubmitBatch(doubled);
  for (size_t workers : {4u, 8u}) {
    auto many = MakeEngine(fx.setting, workers, /*cache=*/128);
    std::vector<Decision> with_many = many->SubmitBatch(doubled);
    ExpectSameDecisions(with_one, with_many);
  }
}

TEST(EngineTest, RcqpKindsShareVerdictAcrossInstances) {
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/2, /*cache=*/64);

  DecisionRequest with_table;
  with_table.kind = ProblemKind::kRcqpWeak;
  with_table.query = fx.q1;
  with_table.cinstance = fx.ctable;
  DecisionRequest with_empty;
  with_empty.kind = ProblemKind::kRcqpWeak;
  with_empty.query = fx.q1;
  with_empty.cinstance = CInstance(fx.setting.schema);

  // RCQP quantifies over all instances, so the audited instance is not part
  // of the memoization key.
  EXPECT_EQ(engine->FingerprintRequest(with_table),
            engine->FingerprintRequest(with_empty));
  Decision first = engine->Decide(with_table);
  Decision second = engine->Decide(with_empty);
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(first.answer);  // Theorem 5.4: monotone ⇒ always true
  EXPECT_TRUE(second.from_cache);
}

TEST(EngineTest, UndecidableKindsReportErrorsInCounters) {
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/2, /*cache=*/64);

  // An FO query with negation: RCDP weak is undecidable (Theorem 5.1).
  FoPtr formula = FoFormula::Not(FoFormula::Atom(
      RelAtom{"MVisit",
              {CTerm(VarId{0}), CTerm(VarId{1}), CTerm(VarId{2}),
               CTerm(VarId{3}), CTerm(VarId{4}), CTerm(VarId{5}),
               CTerm(VarId{6}), CTerm(VarId{7})}}));
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpWeak;
  request.query = Query::Fo(FoQuery({VarId{0}}, std::move(formula)));
  request.cinstance = fx.ctable;

  Decision decision = engine->Decide(request);
  EXPECT_EQ(decision.status.code(), StatusCode::kUndecidable);
  EXPECT_EQ(engine->counters().errors, 1u);
}

TEST(EngineTest, ProblemKindNamesRoundTrip) {
  EXPECT_EQ(AllProblemKinds().size(), 8u);
  for (ProblemKind kind : AllProblemKinds()) {
    ASSERT_OK_AND_ASSIGN(parsed, ParseProblemKind(ProblemKindName(kind)));
    EXPECT_EQ(parsed, kind);
  }
  Result<ProblemKind> bogus = ParseProblemKind("rcdp-bogus");
  ASSERT_FALSE(bogus.ok());
  // The error names every valid kind, so CLI users see their options.
  for (ProblemKind kind : AllProblemKinds()) {
    EXPECT_NE(bogus.status().message().find(ProblemKindName(kind)),
              std::string::npos)
        << bogus.status().message();
  }
}

TEST(EngineTest, AdmissionFilterAtCapacityOneProtectsTheHotEntry) {
  // The shard cache's frequency-sketch admission changes the legacy pure-LRU
  // story at capacity 1: a ONE-SHOT candidate no longer flushes a hot
  // resident entry — it must first be seen as often as the victim it would
  // displace. (The plain LRU eviction-order contract lives on in the
  // LruCache template tests in cache_test.cc.)
  AuditFixture fx = MakeAuditFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/0, /*cache=*/1);

  DecisionRequest a;
  a.kind = ProblemKind::kRcdpStrong;
  a.query = fx.by_patient;
  a.cinstance = fx.audited;
  DecisionRequest b = a;
  b.query = fx.all_cities;

  EXPECT_FALSE(engine->Decide(a).from_cache);  // miss: cache = {A}
  EXPECT_TRUE(engine->Decide(a).from_cache);   // hit: A is now hot
  // B computes but is refused admission: it has been seen less often than
  // the resident A it would evict.
  EXPECT_FALSE(engine->Decide(b).from_cache);  // miss; not cached
  EXPECT_TRUE(engine->Decide(a).from_cache);   // A survived the one-shot B
  // A second B matches A's frequency: admitted, displacing A.
  EXPECT_FALSE(engine->Decide(b).from_cache);  // miss: evicts A, cache = {B}
  EXPECT_TRUE(engine->Decide(b).from_cache);   // hit
  EXPECT_FALSE(engine->Decide(a).from_cache);  // miss: A was evicted

  EngineCounters counters = engine->counters();
  EXPECT_EQ(counters.requests, 7u);
  EXPECT_EQ(counters.cache_hits, 3u);
  EXPECT_EQ(counters.cache_misses, 4u);
  EXPECT_EQ(counters.admission_rejects, 1u);  // B's refused first insert
  EXPECT_GE(counters.evictions, 1u);          // A displaced by the hot B
  EXPECT_GT(counters.cache_bytes, 0u);

  // ClearCache drops the memoized results but preserves the counters.
  engine->ClearCache();
  EXPECT_FALSE(engine->Decide(a).from_cache);
  counters = engine->counters();
  EXPECT_EQ(counters.requests, 8u);
  EXPECT_EQ(counters.cache_hits, 3u);
  EXPECT_EQ(counters.cache_misses, 5u);
}

TEST(EngineTest, CapacityZeroNeverHitsAndStillCountsWork) {
  AuditFixture fx = MakeAuditFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/0, /*cache=*/0);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  EXPECT_FALSE(engine->Decide(request).from_cache);
  EXPECT_FALSE(engine->Decide(request).from_cache);
  engine->ClearCache();  // no-op with no cache, must stay safe
  EXPECT_FALSE(engine->Decide(request).from_cache);

  EngineCounters counters = engine->counters();
  EXPECT_EQ(counters.requests, 3u);
  EXPECT_EQ(counters.cache_hits, 0u);
  // Misses count real evaluations even with memoization off.
  EXPECT_EQ(counters.cache_misses, 3u);
}

TEST(EngineTest, WitnessSurfacesThroughEngineDecisions) {
  // Example 2.4: Q4 is weakly but NOT strongly complete — some world picks
  // the wrong name for t2. The adapter must surface that counterexample.
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/2, /*cache=*/64);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.q4;
  request.cinstance = fx.ctable;
  request.want_witness = true;

  Decision decision = engine->Decide(request);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_FALSE(decision.answer);
  ASSERT_NE(decision.witness, nullptr);
  EXPECT_NE(decision.witness->note.find("incomplete"), std::string::npos)
      << decision.witness->note;

  // Without want_witness the decision stays lean (and is keyed separately).
  request.want_witness = false;
  Decision lean = engine->Decide(request);
  EXPECT_EQ(lean.witness, nullptr);
  EXPECT_NE(engine->FingerprintRequest(request),
            [&] {
              DecisionRequest with = request;
              with.want_witness = true;
              return engine->FingerprintRequest(with);
            }());
}

TEST(EngineTest, SearchStatsMergeAccumulatesFieldWise) {
  SearchStats a;
  a.valuations = 1;
  a.worlds = 2;
  a.extensions = 3;
  a.cc_checks = 4;
  a.query_evals = 5;
  SearchStats b = a;
  b.Merge(a);
  EXPECT_EQ(b.valuations, 2u);
  EXPECT_EQ(b.worlds, 4u);
  EXPECT_EQ(b.extensions, 6u);
  EXPECT_EQ(b.cc_checks, 8u);
  EXPECT_EQ(b.query_evals, 10u);
  b += a;
  EXPECT_EQ(b.valuations, 3u);
  EXPECT_EQ(b.query_evals, 15u);
}

TEST(EngineTest, CountersAggregatePerRequestStats) {
  PatientsFixture fx = MakePatientsFixture();
  auto engine = MakeEngine(fx.setting, /*workers=*/0, /*cache=*/0);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.q1;
  request.cinstance = fx.ctable;
  Decision first = engine->Decide(request);
  Decision second = engine->Decide(request);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());

  // With memoization off both runs do real work; the engine-level counters
  // are the field-wise sum of the per-request stats.
  EngineCounters counters = engine->counters();
  EXPECT_EQ(counters.search.valuations,
            first.stats.valuations + second.stats.valuations);
  EXPECT_EQ(counters.search.query_evals,
            first.stats.query_evals + second.stats.query_evals);
  EXPECT_GT(counters.search.valuations, 0u);
}

}  // namespace
}  // namespace relcomp
