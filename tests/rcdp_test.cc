// Tests for RCDP in the three completeness models, including the Thm 5.1(3)
// reduction swept against the QBF oracle and the model-relationship
// properties of Section 2.2.
#include <gtest/gtest.h>

#include "core/rcdp.h"
#include "reductions/thm51_rcdpw.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

// Boolean unary relation B bounded by master Bm = {0, 1}; query returns B.
struct BoolFixture {
  PartiallyClosedSetting setting;
  Query q;

  BoolFixture() {
    setting.schema.AddRelation(
        RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
    setting.master_schema.AddRelation(
        RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Bm", {I(0)});
    setting.dm.AddTuple("Bm", {I(1)});
    ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
    setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                             std::vector<int>{0});
    q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));
  }
};

TEST(RcdpStrongTest, FullBooleanRelationIsComplete) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  t.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(complete, RcdpStrong(fx.q, t, fx.setting));
  EXPECT_TRUE(complete);
}

TEST(RcdpStrongTest, MissingTupleBreaksStrongCompleteness) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  CompletenessWitness witness;
  ASSERT_OK_AND_ASSIGN(complete,
                       RcdpStrong(fx.q, t, fx.setting, {}, nullptr, &witness));
  EXPECT_FALSE(complete);
  EXPECT_EQ(witness.answer, Tuple({I(1)}));
}

TEST(RcdpStrongTest, VariableRowStillCompleteWhenWorldsCovered) {
  // T = {(x), (0), (1)}: every valuation yields the full relation.
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  t.at("B").AddRow({Cell(I(0))});
  t.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(complete, RcdpStrong(fx.q, t, fx.setting));
  EXPECT_TRUE(complete);
}

TEST(RcdpStrongTest, VariableRowAloneIsNotStronglyComplete) {
  // T = {(x)}: the world {0} can be extended by (1).
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(complete, RcdpStrong(fx.q, t, fx.setting));
  EXPECT_FALSE(complete);
}

TEST(RcdpViableTest, VariableRowAloneIsNotViablyCompleteEither) {
  // Both worlds {0} and {1} are extensible with the other value.
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(viable, RcdpViable(fx.q, t, fx.setting));
  EXPECT_FALSE(viable);
}

TEST(RcdpViableTest, ConditionCanSelectCompleteWorld) {
  // T = {(x), (1)} with a master bound of exactly {1}: only the valuation
  // x = 1 is partially closed, giving the complete world {1}.
  BoolFixture fx;
  fx.setting.dm.at("Bm").Erase({I(0)});
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  t.at("B").AddRow({Cell(I(1))});
  Instance witness;
  ASSERT_OK_AND_ASSIGN(viable,
                       RcdpViable(fx.q, t, fx.setting, {}, nullptr, &witness));
  EXPECT_TRUE(viable);
  EXPECT_TRUE(witness.at("B").Contains({I(1)}));
}

TEST(RcdpWeakTest, WeakHoldsWhenCertainAnswersSurvive) {
  // T = {(x)}: certain answers over worlds {0} / {1} = ∅; every extension
  // yields {0, 1}, whose intersection over extension pairs is... {0}∪{1}
  // per world-extension: world {0} extends to {0,1} only; world {1} too; so
  // extension-certain = {0,1} ∩ {0,1} = {0,1} ⊄ ∅ ⇒ not weakly complete.
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(fx.q, t, fx.setting));
  EXPECT_FALSE(weak);
}

TEST(RcdpWeakTest, FullRelationWeaklyComplete) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  t.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(fx.q, t, fx.setting));
  EXPECT_TRUE(weak);  // no extensions at all
}

TEST(RcdpWeakTest, OpenWorldEmptyInstanceWeaklyComplete) {
  // With no CCs and Q over one relation: extensions of ∅ disagree on every
  // tuple, so the certain extension answer is empty = Q(∅).
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"E", {V(0), V(1)}}}));
  CInstance t(setting.schema);
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(q, t, setting));
  EXPECT_TRUE(weak);
}

TEST(RcdpWeakTest, SingletonWithConstantAnswerNotWeaklyComplete) {
  // Example 5.5-flavored: Q(x) :- R1(y), R2(z), x = "a" — the constant
  // answer appears in every non-degenerate extension.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema("R1", {Attribute{"x"}}));
  setting.schema.AddRelation(RelationSchema("R2", {Attribute{"x"}}));
  setting.dm = Instance(setting.master_schema);
  ConjunctiveQuery cq({CTerm(S("a"))},
                      {RelAtom{"R1", {V(0)}}, RelAtom{"R2", {V(1)}}});
  Query q = Query::Cq(std::move(cq));
  // I0 = ({0}, {1}): Q(I0) = {a}; every extension also returns {a} — the
  // instance is weakly complete.
  CInstance t(setting.schema);
  t.at("R1").AddRow({Cell(I(0))});
  t.at("R2").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(q, t, setting));
  EXPECT_TRUE(weak);
  // The empty instance is also weakly complete (extensions with only R1
  // tuples return ∅) — Example 5.5's point about non-monotone minimality.
  CInstance empty(setting.schema);
  ASSERT_OK_AND_ASSIGN(weak_empty, RcdpWeak(q, empty, setting));
  EXPECT_TRUE(weak_empty);
}

TEST(RcdpTest, InconsistentCInstanceRejectedInAllModels) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  // Deny everything: bound master made empty.
  fx.setting.dm.at("Bm").Erase({I(0)});
  fx.setting.dm.at("Bm").Erase({I(1)});
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q, t, fx.setting));
  EXPECT_FALSE(strong);
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(fx.q, t, fx.setting));
  EXPECT_FALSE(weak);
  ASSERT_OK_AND_ASSIGN(viable, RcdpViable(fx.q, t, fx.setting));
  EXPECT_FALSE(viable);
}

TEST(RcdpTest, UndecidableLanguagesReportStatus) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  FoQuery fo({}, FoFormula::Not(FoFormula::Atom({"B", {I(0)}})));
  EXPECT_EQ(RcdpStrong(Query::Fo(fo), t, fx.setting).status().code(),
            StatusCode::kUndecidable);
  EXPECT_EQ(RcdpWeak(Query::Fo(fo), t, fx.setting).status().code(),
            StatusCode::kUndecidable);
  EXPECT_EQ(RcdpViable(Query::Fo(fo), t, fx.setting).status().code(),
            StatusCode::kUndecidable);
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"B", {V(0)}}}, {}});
  p.set_output("T");
  EXPECT_EQ(RcdpStrong(Query::Fp(p), t, fx.setting).status().code(),
            StatusCode::kUndecidable);
  // FP in the weak model IS decidable (Theorem 5.1).
  EXPECT_TRUE(RcdpWeak(Query::Fp(p), t, fx.setting).ok());
}

TEST(RcdpTest, GroundStrongEqualsGroundViable) {
  BoolFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("B", {I(0)});
  CInstance t = CInstance::FromInstance(db);
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q, t, fx.setting));
  ASSERT_OK_AND_ASSIGN(viable, RcdpViable(fx.q, t, fx.setting));
  EXPECT_EQ(strong, viable);
  db.AddTuple("B", {I(1)});
  CInstance t2 = CInstance::FromInstance(db);
  ASSERT_OK_AND_ASSIGN(strong2, RcdpStrong(fx.q, t2, fx.setting));
  ASSERT_OK_AND_ASSIGN(viable2, RcdpViable(fx.q, t2, fx.setting));
  EXPECT_EQ(strong2, viable2);
}

// ---------------------------------------------------------------------------
// Thm 5.1(3): ∃∀∃3SAT ⇔ ¬ weakly complete, swept against the QBF oracle.
// ---------------------------------------------------------------------------

class Thm51Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Thm51Sweep, RcdpWeakMatchesQbfOracle) {
  Qbf qbf = MakeExistsForallExists(1, 2, 1, RandomCnf3(4, 2, GetParam()));
  GadgetProblem gadget = BuildRcdpWeakGadget(qbf);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      weak, RcdpWeakGround(gadget.query, gadget.ground, gadget.setting));
  // Claim: ϕ true ⇔ I is NOT weakly complete.
  EXPECT_EQ(!weak, qbf.Eval()) << qbf.matrix.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm51Sweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace relcomp
