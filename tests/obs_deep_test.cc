// Deep observability tests: the pieces layered on top of the basic
// metrics/trace/slowlog machinery.
//
// Unit layer: SearchProfile slice algebra (nested pause/resume, tiling,
// the slice cap), sliding-window counters/histograms on explicit
// timelines, histogram overflow-bucket quantiles and merge-under-
// concurrency, Prometheus/JSON label escaping, the trace-export ring and
// the Chrome trace_event renderer's tiling invariant.
//
// Service layer: slow-log entries embed the evaluation's SearchProfile
// and identity fields; DumpTraces() emits per-loop sub-slices; windowed
// rates/quantiles appear in DumpMetrics; the stall watchdog flags an
// evaluation whose progress hook wedges, within one threshold period.
//
// The stress case (RELCOMP_OBS_STRESS=1) drives the full pipeline —
// sampler thread, watchdog, trace ring, windows — under concurrent load,
// and writes DumpMetrics(json) + the Chrome trace dump into
// RELCOMP_OBS_DUMP_DIR when set (the CI failure-artifact hook).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using obs::HistogramData;
using obs::MetricsDump;
using obs::MetricsRegistry;
using obs::Trace;
using obs::TraceRecord;
using obs::TraceSink;
using obs::WindowedCounter;
using obs::WindowedHistogram;
using testing::MakeSlowFixture;
using testing::SlowFixture;

using Clock = std::chrono::steady_clock;

Clock::time_point At(uint64_t micros) {
  return Clock::time_point(std::chrono::microseconds(micros));
}

// ---------------------------------------------------------------------------
// SearchProfile

TEST(SearchProfileTest, SingleLoopSliceAndTotal) {
  SearchProfile profile;
  profile.Start(At(0));
  profile.EnterLoop("ground", At(10));
  profile.Heartbeat(100);
  profile.ExitLoop("ground", 250, At(40));
  profile.Finish(At(50));

  EXPECT_TRUE(profile.finished());
  EXPECT_EQ(profile.total_micros(), 50u);
  ASSERT_EQ(profile.slices().size(), 1u);
  EXPECT_STREQ(profile.slices()[0].loop, "ground");
  EXPECT_EQ(profile.slices()[0].start_micros, 10u);
  EXPECT_EQ(profile.slices()[0].end_micros, 40u);
  EXPECT_EQ(profile.slices()[0].steps, 250u);
  ASSERT_EQ(profile.totals().size(), 1u);
  EXPECT_EQ(profile.totals()[0].micros, 30u);
  EXPECT_EQ(profile.totals()[0].steps, 250u);
  EXPECT_EQ(profile.totals()[0].entries, 1u);
  EXPECT_NE(profile.ToString().find("ground"), std::string::npos);
}

TEST(SearchProfileTest, NestedLoopPausesAndResumesParent) {
  // Outer runs [0,50), inner [10,30): the outer's slice is paused while
  // the inner runs and resumes at the inner's exit instant, so the slices
  // are non-overlapping and tile the loop-covered time exactly.
  SearchProfile profile;
  profile.Start(At(0));
  profile.EnterLoop("outer", At(0));
  profile.Heartbeat(40);
  profile.EnterLoop("inner", At(10));
  profile.ExitLoop("inner", 7, At(30));
  profile.ExitLoop("outer", 90, At(50));
  profile.Finish(At(60));

  ASSERT_EQ(profile.slices().size(), 3u);
  // outer [0,10) paused, inner [10,30), outer resumed [30,50).
  EXPECT_STREQ(profile.slices()[0].loop, "outer");
  EXPECT_EQ(profile.slices()[0].start_micros, 0u);
  EXPECT_EQ(profile.slices()[0].end_micros, 10u);
  EXPECT_STREQ(profile.slices()[1].loop, "inner");
  EXPECT_EQ(profile.slices()[1].start_micros, 10u);
  EXPECT_EQ(profile.slices()[1].end_micros, 30u);
  EXPECT_EQ(profile.slices()[1].steps, 7u);
  EXPECT_STREQ(profile.slices()[2].loop, "outer");
  EXPECT_EQ(profile.slices()[2].start_micros, 30u);
  EXPECT_EQ(profile.slices()[2].end_micros, 50u);

  // Tiling: consecutive slices share boundaries; no gaps, no overlaps.
  for (size_t i = 1; i < profile.slices().size(); ++i) {
    EXPECT_EQ(profile.slices()[i].start_micros,
              profile.slices()[i - 1].end_micros);
  }

  ASSERT_EQ(profile.totals().size(), 2u);  // first-entered order
  EXPECT_STREQ(profile.totals()[0].loop, "outer");
  EXPECT_EQ(profile.totals()[0].micros, 30u);  // 10 + 20
  EXPECT_EQ(profile.totals()[0].steps, 90u);
  EXPECT_STREQ(profile.totals()[1].loop, "inner");
  EXPECT_EQ(profile.totals()[1].micros, 20u);
  EXPECT_EQ(profile.totals()[1].entries, 1u);
}

TEST(SearchProfileTest, FinishClosesLeftOpenLoops) {
  SearchProfile profile;
  profile.Start(At(0));
  profile.EnterLoop("a", At(0));
  profile.EnterLoop("b", At(5));
  profile.Finish(At(20));
  profile.Finish(At(99));  // idempotent: the first Finish wins

  EXPECT_EQ(profile.total_micros(), 20u);
  uint64_t covered = 0;
  for (const SearchProfile::Slice& slice : profile.slices()) {
    covered += slice.duration_micros();
  }
  EXPECT_EQ(covered, 20u);  // a [0,5) + b [5,20)... then a resumed [20,20)
}

TEST(SearchProfileTest, SliceCapDropsSlicesButTotalsStayExact) {
  SearchProfile profile;
  profile.Start(At(0));
  const size_t kLoops = SearchProfile::kMaxSlices + 40;
  for (size_t i = 0; i < kLoops; ++i) {
    profile.EnterLoop("hot", At(2 * i));
    profile.ExitLoop("hot", 3, At(2 * i + 1));
  }
  profile.Finish(At(2 * kLoops));

  EXPECT_EQ(profile.slices().size(), SearchProfile::kMaxSlices);
  EXPECT_EQ(profile.dropped_slices(), kLoops - SearchProfile::kMaxSlices);
  ASSERT_EQ(profile.totals().size(), 1u);
  // Totals accumulate across dropped slices: 1us and 3 steps per entry.
  EXPECT_EQ(profile.totals()[0].micros, kLoops);
  EXPECT_EQ(profile.totals()[0].steps, 3 * kLoops);
  EXPECT_EQ(profile.totals()[0].entries, kLoops);
  EXPECT_NE(profile.ToString().find("dropped"), std::string::npos);
}

TEST(SearchProfileTest, CheckpointDrivesProfileAutomatically) {
  // The integration contract: constructing/destroying SearchCheckpoints
  // with a profile wired through SearchOptions produces nested loop
  // attribution without the loops doing anything explicit.
  SearchProfile profile;
  SearchOptions options;
  options.profile = &profile;
  {
    SearchCheckpoint outer(options, "outer-loop");
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(outer.Tick().ok());
    {
      SearchCheckpoint inner(options, "inner work", "inner-loop");
      for (int i = 0; i < 3; ++i) ASSERT_TRUE(inner.Tick().ok());
    }
  }
  profile.Finish();

  ASSERT_EQ(profile.totals().size(), 2u);
  EXPECT_STREQ(profile.totals()[0].loop, "outer-loop");
  EXPECT_EQ(profile.totals()[0].steps, 5u);
  EXPECT_STREQ(profile.totals()[1].loop, "inner-loop");
  EXPECT_EQ(profile.totals()[1].steps, 3u);
}

// ---------------------------------------------------------------------------
// Sliding windows

TEST(WindowedCounterTest, SumAndRateOverTrailingWindow) {
  WindowedCounter counter(/*window_slots=*/8);
  const auto base = At(100'000'000);  // an arbitrary whole second
  counter.Record(5, base);
  counter.Record(3, base + std::chrono::seconds(1));
  counter.Record(2, base + std::chrono::seconds(3));

  const auto now = base + std::chrono::seconds(3);
  EXPECT_EQ(counter.Sum(1, now), 2u);   // this second only
  EXPECT_EQ(counter.Sum(3, now), 5u);   // seconds 1..3
  EXPECT_EQ(counter.Sum(4, now), 10u);  // everything
  EXPECT_DOUBLE_EQ(counter.Rate(4, now), 10.0 / 4.0);
}

TEST(WindowedCounterTest, OldSlotsExpireAndRecycle) {
  WindowedCounter counter(/*window_slots=*/4);
  const auto base = At(50'000'000);
  counter.Record(100, base);
  // 10 seconds later the ring has wrapped: the old slot's second no longer
  // matches and its count must not leak into the sum.
  const auto later = base + std::chrono::seconds(10);
  counter.Record(1, later);
  EXPECT_EQ(counter.Sum(4, later), 1u);
  // A window larger than the ring is clamped to the ring's span.
  EXPECT_EQ(counter.Sum(1000, later), 1u);
}

TEST(WindowedHistogramTest, SnapshotMergesOnlyRecentSeconds) {
  WindowedHistogram histogram(/*window_slots=*/8);
  const auto base = At(200'000'000);
  histogram.Record(100, base);
  histogram.Record(200, base + std::chrono::seconds(5));
  histogram.Record(400, base + std::chrono::seconds(6));

  const auto now = base + std::chrono::seconds(6);
  HistogramData recent = histogram.Snapshot(2, now);  // seconds 5 and 6
  EXPECT_EQ(recent.count, 2u);
  EXPECT_EQ(recent.sum, 600u);
  EXPECT_EQ(recent.max, 400u);
  HistogramData all = histogram.Snapshot(8, now);
  EXPECT_EQ(all.count, 3u);
  EXPECT_EQ(all.sum, 700u);
  HistogramData idle = histogram.Snapshot(2, now + std::chrono::seconds(30));
  EXPECT_EQ(idle.count, 0u);
  EXPECT_EQ(idle.Quantile(0.95), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram edge cases

TEST(HistogramEdgeTest, OverflowBucketQuantilesStayFinite) {
  // Values at and past 2^63 land in the last bucket; quantiles must stay
  // inside [lower bound, max], not overflow or return garbage.
  HistogramData data;
  const uint64_t huge = uint64_t{1} << 63;
  data.buckets[HistogramData::BucketIndex(huge)] += 3;
  data.count = 3;
  data.sum = 0;  // sum would overflow; quantiles never consult it
  data.max = UINT64_MAX;

  EXPECT_EQ(HistogramData::BucketIndex(huge), 64);
  EXPECT_EQ(HistogramData::BucketIndex(UINT64_MAX), 64);
  const double p50 = data.Quantile(0.5);
  const double p99 = data.Quantile(0.99);
  EXPECT_GE(p50, static_cast<double>(HistogramData::BucketLowerBound(64)));
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, static_cast<double>(UINT64_MAX) * 1.0000001);
}

TEST(HistogramEdgeTest, MergeUnderConcurrentRecordingKeepsInvariants) {
  // Writers hammer a live histogram (including racing max updates) while
  // a reader repeatedly snapshots and merges; every merged view must obey
  // count == sum(buckets) and max >= the largest completed record.
  obs::Histogram live;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&live, &stop, t] {
      // A floor of records before honoring `stop`: the reader loop can
      // finish before this thread is even scheduled, and the final
      // assertions need a guaranteed non-empty histogram whose max walked
      // past 2^40 (the doubling cycle resets there, so 100 >> 41 steps).
      uint64_t value = 1;
      for (int j = 0; j < 100 || !stop.load(std::memory_order_relaxed);
           ++j) {
        live.Record(value + static_cast<uint64_t>(t));
        value = value < (uint64_t{1} << 40) ? value * 2 : 1;
      }
    });
  }
  HistogramData merged;
  for (int i = 0; i < 200; ++i) {
    HistogramData snap = live.Snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets) bucket_total += b;
    // Racing writers bump buckets before count, so a snapshot may observe
    // slightly more bucket increments than counted records — never fewer
    // by more than the writers in flight.
    EXPECT_LE(snap.count, bucket_total);
    EXPECT_LE(bucket_total - snap.count, 8u);
    merged = HistogramData{};
    merged.Merge(snap).Merge(snap);
    EXPECT_EQ(merged.count, 2 * snap.count);
    EXPECT_EQ(merged.max, snap.max);
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  const HistogramData final_snap = live.Snapshot();
  EXPECT_GT(final_snap.count, 0u);
  EXPECT_GE(final_snap.max, uint64_t{1} << 40);
}

TEST(MetricsEscapingTest, PrometheusAndJsonEscapeHostileLabelValues) {
  MetricsRegistry registry;
  // A tenant label carrying every character the exposition must escape.
  const std::string hostile = "a\"b\\c\nd";
  obs::Counter* counter = registry.GetCounter(
      "relcomp_escape_test_total", {{"tenant", hostile}}, "escaping");
  ASSERT_NE(counter, nullptr);
  counter->Inc(7);

  MetricsDump dump;
  registry.DumpInto(&dump);
  const std::string prom = dump.Render(obs::DumpFormat::kPrometheus);
  // Prometheus text: backslash, quote, and newline escaped inside the
  // label value — and the raw newline must NOT appear mid-line.
  EXPECT_NE(prom.find("tenant=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("a\"b"), std::string::npos) << prom;

  const std::string json = dump.Render(obs::DumpFormat::kJson);
  EXPECT_NE(json.find("\"tenant\":\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Trace export

TEST(TraceSinkTest, BoundedRingOverwritesOldestAndCountsDrops) {
  TraceSink sink;
  auto make = [](uint64_t id) {
    TraceRecord record;
    auto trace = std::make_shared<Trace>(id, At(0));
    trace->Finish("ok", At(10));
    record.trace = std::move(trace);
    return record;
  };
  sink.Offer(make(1));  // unconfigured: capacity 0 drops silently
  EXPECT_EQ(sink.size(), 0u);

  sink.Configure(2);
  sink.Offer(make(1));
  sink.Offer(make(2));
  sink.Offer(make(3));
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.capacity(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  const auto snapshot = sink.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].trace->id(), 2u);  // oldest first
  EXPECT_EQ(snapshot[1].trace->id(), 3u);
}

TEST(TraceExportTest, SubSlicesAndGapFillTileTheEvaluateSpan) {
  // A request trace with a 40us evaluate span and a profile covering
  // [0,10) and [20,30) of it: the renderer must emit the two loop slices
  // plus "other" gap-fills [10,20) and [30,40), tiling the span exactly.
  auto trace = std::make_shared<Trace>(7, At(1000));
  trace->Phase("admit", At(1000));
  trace->Phase("evaluate", At(1100));
  trace->Phase("deliver", At(1140));
  trace->Finish("YES", At(1150));
  trace->SetTrack(2);

  auto profile = std::make_shared<SearchProfile>();
  profile->Start(At(1100));
  profile->EnterLoop("ground", At(1100));
  profile->ExitLoop("ground", 11, At(1110));
  profile->EnterLoop("mod-enum", At(1120));
  profile->ExitLoop("mod-enum", 22, At(1130));
  profile->Finish(At(1140));

  TraceRecord record;
  record.trace = trace;
  record.tenant = "3";
  record.kind = "RCDP_STRONG";
  record.profile = profile;
  record.worker = 2;

  const std::string json = obs::RenderChromeTrace({record});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("relcomp requests"), std::string::npos);
  EXPECT_NE(json.find("relcomp workers"), std::string::npos);
  EXPECT_NE(json.find("req#7 tenant=3 kind=RCDP_STRONG"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evaluate req#7\""), std::string::npos);
  EXPECT_NE(json.find("worker 2"), std::string::npos);

  // The evaluate span: ts = 1100 on the shared clock, dur = 40.
  EXPECT_NE(json.find("\"name\":\"evaluate req#7\",\"ph\":\"X\",\"ts\":1100,"
                      "\"dur\":40"),
            std::string::npos)
      << json;
  // Loop sub-slices at their absolute timestamps, with step args.
  EXPECT_NE(json.find("\"name\":\"ground\",\"ph\":\"X\",\"ts\":1100,"
                      "\"dur\":10"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"steps\":11"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mod-enum\",\"ph\":\"X\",\"ts\":1120,"
                      "\"dur\":10"),
            std::string::npos)
      << json;
  // Gap fills: [10,20) and [30,40) of the span → ts 1110 and 1130.
  EXPECT_NE(json.find("\"name\":\"other\",\"ph\":\"X\",\"ts\":1110,"
                      "\"dur\":10"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"other\",\"ph\":\"X\",\"ts\":1130,"
                      "\"dur\":10"),
            std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Service acceptance

ServiceOptions DeepObsOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 64;
  options.trace_sample = 1;
  options.slow_log = 8;
  options.trace_ring = 16;
  return options;
}

TEST(ServiceObsDeepTest, SlowLogEntriesEmbedSearchProfiles) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  CompletenessService service(DeepObsOptions());
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  ServiceRequest request;
  request.setting = handle;
  request.request = slow.Request();
  request.request.options.max_steps = 100'000;
  service.SubmitAsync(std::move(request)).get();

  const auto entries = service.SlowDecisions();
  ASSERT_FALSE(entries.empty());
  const obs::SlowEntry& worst = entries.front();
  EXPECT_EQ(worst.tenant, std::to_string(handle.id));
  EXPECT_EQ(worst.kind, std::string("rcdp-strong"));
  EXPECT_NE(worst.trace_id, 0u);
  ASSERT_NE(worst.trace, nullptr);
  EXPECT_EQ(worst.trace->id(), worst.trace_id);
  // The acceptance criterion: the entry embeds the evaluation's profile,
  // sealed, with per-loop attribution.
  ASSERT_NE(worst.profile, nullptr);
  EXPECT_TRUE(worst.profile->finished());
  EXPECT_FALSE(worst.profile->totals().empty());
  uint64_t total_steps = 0;
  for (const SearchProfile::LoopTotal& total : worst.profile->totals()) {
    EXPECT_NE(total.loop, nullptr);
    total_steps += total.steps;
  }
  EXPECT_GT(total_steps, 0u);
}

TEST(ServiceObsDeepTest, DumpTracesEmitsPerLoopSubSlices) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  CompletenessService service(DeepObsOptions());
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  ServiceRequest request;
  request.setting = handle;
  request.request = slow.Request();
  request.request.options.max_steps = 100'000;
  service.SubmitAsync(std::move(request)).get();

  const std::string json = service.DumpTraces();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("evaluate req#"), std::string::npos);
  // The evaluation went through the decider's instrumented loops: at
  // least one known loop tag must appear as a worker-row sub-slice.
  const bool has_loop_slice =
      json.find("\"name\":\"ground\"") != std::string::npos ||
      json.find("\"name\":\"weak-ext\"") != std::string::npos ||
      json.find("\"name\":\"mod-enum\"") != std::string::npos ||
      json.find("\"name\":\"rcqp-dfs\"") != std::string::npos;
  EXPECT_TRUE(has_loop_slice) << json;
}

TEST(ServiceObsDeepTest, DumpMetricsReportsWindowedRatesAndRecentLatency) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/3, /*vars=*/2);
  CompletenessService service(DeepObsOptions());
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  for (int i = 0; i < 3; ++i) {
    service.Decide(handle, slow.Request());
  }

  const std::string prom = service.DumpMetrics(obs::DumpFormat::kPrometheus);
  // The requests just delivered are inside every reporting window, so the
  // 60s rate is necessarily positive and the recent histogram non-empty.
  EXPECT_NE(prom.find("relcomp_requests_rate60s"), std::string::npos);
  EXPECT_NE(prom.find("relcomp_tenant_requests_rate60s{tenant=\"" +
                      std::to_string(handle.id) + "\"}"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("relcomp_requests_rate60s 0.000"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("relcomp_request_latency_recent60s_micros_count 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("relcomp_watchdog_stalls_total 0"), std::string::npos);

  const std::string json = service.DumpMetrics(obs::DumpFormat::kJson);
  EXPECT_NE(json.find("\"name\":\"relcomp_requests_rate10s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\":\"rate\""), std::string::npos);
}

TEST(ServiceObsDeepTest, SearchStepMetricsAttributePerLoop) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  CompletenessService service(DeepObsOptions());
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));
  DecisionRequest request = slow.Request();
  request.options.max_steps = 100'000;
  service.Decide(handle, request);

  const std::string prom = service.DumpMetrics(obs::DumpFormat::kPrometheus);
  EXPECT_NE(prom.find("relcomp_search_steps_total{"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("loop=\""), std::string::npos) << prom;
  EXPECT_NE(prom.find("relcomp_search_loop_micros_count"), std::string::npos)
      << prom;
}

// The shared state of a deliberately wedged progress hook: the first
// invocation parks until the test releases it.
struct StallGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<bool> parked{false};

  void Park() {
    parked.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return released; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

TEST(ServiceObsDeepTest, WatchdogFlagsStalledEvaluationWithinThreshold) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  ServiceOptions options = DeepObsOptions();
  options.num_workers = 1;
  options.watchdog_stall_micros = 20'000;  // 20ms: aggressive but safe
  options.recorder_interval_ms = 10;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  auto gate = std::make_shared<StallGate>();
  // The request's own progress hook wedges on its first call — the
  // checkpoint's entry notification — simulating an evaluation that stops
  // making progress. The service's chained hook heartbeats BEFORE calling
  // it, so the watchdog knows which loop the evaluation is stuck in. The
  // hook object outlives the evaluation (released before future.get()).
  SearchOptions::SearchProgressFn wedge =
      [gate](const char* /*loop*/, uint64_t /*steps*/) {
        if (!gate->parked.load()) gate->Park();
      };
  ServiceRequest request;
  request.setting = handle;
  request.request = slow.Request();
  request.request.options.max_steps = 100'000;
  request.request.options.progress = &wedge;
  std::future<Decision> future = service.SubmitAsync(std::move(request));

  // The watchdog must flag the stall within a few threshold periods.
  bool flagged = false;
  std::string flagged_note;
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    for (const obs::SlowEntry& entry : service.SlowDecisions()) {
      if (entry.note.find("watchdog") != std::string::npos) {
        flagged = true;
        flagged_note = entry.note;
      }
    }
    if (flagged) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  gate->Release();  // un-wedge before asserting: a hang would mask failure
  const Decision decision = future.get();

  ASSERT_TRUE(flagged);
  EXPECT_NE(flagged_note.find("no checkpoint progress"), std::string::npos)
      << flagged_note;
  EXPECT_NE(flagged_note.find("tenant=" + std::to_string(handle.id)),
            std::string::npos)
      << flagged_note;
  EXPECT_NE(flagged_note.find("kind=rcdp-strong"), std::string::npos)
      << flagged_note;
  EXPECT_OK(decision.status);  // released: the evaluation completed

  // The stall is also visible in the dashboard, the metrics, and the
  // flight recorder's annotation stream.
  const std::string report = service.ObsReport();
  EXPECT_NE(report.find("watchdog stalls: 1"), std::string::npos) << report;
  const std::string prom = service.DumpMetrics(obs::DumpFormat::kPrometheus);
  EXPECT_NE(prom.find("relcomp_watchdog_stalls_total 1"), std::string::npos);
}

TEST(ServiceObsDeepTest, ObsReportShowsVitalsAndRecorderSamples) {
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/3, /*vars=*/2);
  ServiceOptions options = DeepObsOptions();
  options.recorder_interval_ms = 5;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));
  service.Decide(handle, slow.Request());

  // The sampler thread ticks every 5ms; wait (bounded) for a sample.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::string report;
  while (Clock::now() < deadline) {
    report = service.ObsReport();
    if (report.find("flight recorder") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(report.find("=== relcomp obs report ==="), std::string::npos);
  EXPECT_NE(report.find("in-flight:"), std::string::npos);
  EXPECT_NE(report.find("flight recorder"), std::string::npos) << report;
  EXPECT_NE(report.find("tenant " + std::to_string(handle.id)),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("slow log:"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Stress: the full pipeline under concurrent load. Scaled up under
// RELCOMP_OBS_STRESS=1 (the CI sanitizer configuration); writes diagnostic
// dumps into RELCOMP_OBS_DUMP_DIR when set, which CI uploads as artifacts
// on failure.

TEST(ServiceObsDeepTest, ObsPipelineStress) {
  const bool big = std::getenv("RELCOMP_OBS_STRESS") != nullptr;
  const int rounds = big ? 12 : 3;
  const int per_round = big ? 24 : 8;
  // RELCOMP_OBS_WATCHDOG_US overrides the stall threshold; the CI stress
  // invocation sets it aggressively low so the watchdog fires against
  // legitimately-running evaluations, exercising the flagging path (and
  // its slow-log/recorder fan-out) under sanitizers. Spurious flags are
  // expected in that mode, so the zero-stall assertion only applies to
  // the default, only-a-real-wedge-trips-it threshold.
  const char* watchdog_env = std::getenv("RELCOMP_OBS_WATCHDOG_US");
  const uint64_t watchdog_us =
      watchdog_env ? std::strtoull(watchdog_env, nullptr, 10) : 500'000;

  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  ServiceOptions options = DeepObsOptions();
  options.num_workers = 4;
  options.trace_sample = 2;
  options.trace_ring = 32;
  options.recorder_interval_ms = 2;
  options.watchdog_stall_micros = watchdog_us;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  for (int round = 0; round < rounds; ++round) {
    std::vector<std::future<Decision>> futures;
    futures.reserve(per_round);
    for (int i = 0; i < per_round; ++i) {
      ServiceRequest request;
      request.setting = handle;
      request.request = slow.Request();
      request.request.options.max_steps = 50'000;
      futures.push_back(service.SubmitAsync(std::move(request)));
    }
    // Readers race the deliveries: every exposition path must be safe to
    // call while the pool, the sampler, and the watchdog are all live.
    (void)service.DumpMetrics(obs::DumpFormat::kJson);
    (void)service.DumpTraces();
    (void)service.ObsReport();
    (void)service.SlowDecisions();
    for (std::future<Decision>& future : futures) {
      EXPECT_OK(future.get().status);
    }
  }

  const std::string metrics = service.DumpMetrics(obs::DumpFormat::kJson);
  const std::string traces = service.DumpTraces();
  EXPECT_NE(metrics.find("relcomp_requests_rate10s"), std::string::npos);
  EXPECT_NE(traces.find("traceEvents"), std::string::npos);
  // No stalls at the default threshold: nothing wedged, so the watchdog
  // must not have fired (it flags only genuinely quiet heartbeats). With
  // an env-forced aggressive threshold, flags against slow-but-live
  // evaluations are the point — the assertion is what the pipeline
  // survived, checked above.
  if (watchdog_env == nullptr) {
    EXPECT_NE(metrics.find("\"name\":\"relcomp_watchdog_stalls_total\","
                           "\"labels\":{},\"type\":\"counter\",\"value\":0"),
              std::string::npos)
        << metrics;
  }

  if (const char* dir = std::getenv("RELCOMP_OBS_DUMP_DIR")) {
    std::ofstream(std::string(dir) + "/obs_stress_metrics.json",
                  std::ios::trunc)
        << metrics;
    std::ofstream(std::string(dir) + "/obs_stress_trace.json",
                  std::ios::trunc)
        << traces;
    std::ofstream(std::string(dir) + "/obs_stress_report.txt",
                  std::ios::trunc)
        << service.ObsReport();
  }
}

}  // namespace
}  // namespace relcomp
