// Tests for the bounded semi-decision procedures that handle the
// undecidable Table I cells (FO / FP outside the weak model), including the
// Example 5.3 non-monotone FO query.
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

TEST(BoundedTest, FindsWitnessForOpenCq) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"E", {V(0), V(1)}}}));
  Instance db(setting.schema);
  db.AddTuple("E", {I(1), I(2)});
  ASSERT_OK_AND_ASSIGN(result,
                       SearchIncompletenessGround(q, db, setting, 1));
  EXPECT_TRUE(result.witness_found);
  EXPECT_TRUE(db.IsProperSubsetOf(result.witness.extension));
}

TEST(BoundedTest, NonMonotoneFoLosesAnswer) {
  // Example 5.3 flavor: Q() holds iff R1 ⊆ R2. Adding a tuple to R1 can
  // flip the answer from true to false — the witness "loses" an answer.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema("R1", {Attribute{"x"}}));
  setting.schema.AddRelation(RelationSchema("R2", {Attribute{"x"}}));
  setting.dm = Instance(setting.master_schema);
  // Q() := forall x (R1(x) -> R2(x)) written as !(exists x (R1(x) & !R2(x))).
  FoPtr bad = FoFormula::Exists(
      {V(0)}, FoFormula::And({FoFormula::Atom({"R1", {V(0)}}),
                              FoFormula::Not(FoFormula::Atom({"R2", {V(0)}}))}));
  Query q = Query::Fo(FoQuery({}, FoFormula::Not(bad)));
  ASSERT_EQ(q.language(), QueryLanguage::kFO);
  Instance db(setting.schema);
  db.AddTuple("R2", {I(1)});
  ASSERT_OK_AND_ASSIGN(result,
                       SearchIncompletenessGround(q, db, setting, 1));
  EXPECT_TRUE(result.witness_found);
  EXPECT_NE(result.witness.note.find("loses"), std::string::npos);
}

TEST(BoundedTest, FpWitnessThroughFixpoint) {
  // Reachability query: adding an edge closes a new path.
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  tc.AddRule(FpRule{{"T", {V(0), V(2)}},
                    {{"T", {V(0), V(1)}}, {"E", {V(1), V(2)}}},
                    {}});
  tc.set_output("T");
  Query q = Query::Fp(tc);
  Instance db(setting.schema);
  db.AddTuple("E", {I(1), I(2)});
  ASSERT_OK_AND_ASSIGN(result,
                       SearchIncompletenessGround(q, db, setting, 1));
  EXPECT_TRUE(result.witness_found);
}

TEST(BoundedTest, NoWitnessWhenFullyBounded) {
  // Boolean relation equal to its master bound: no extension exists at all.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.master_schema.AddRelation(
      RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  setting.dm.AddTuple("Bm", {I(0)});
  ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
  setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                           std::vector<int>{0});
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"B", {V(0)}}}, {}});
  p.set_output("T");
  Query q = Query::Fp(p);
  Instance db(setting.schema);
  db.AddTuple("B", {I(0)});
  ASSERT_OK_AND_ASSIGN(result, SearchIncompletenessGround(q, db, setting, 2));
  EXPECT_FALSE(result.witness_found);
}

TEST(BoundedTest, StrongSearchScansAllWorlds) {
  // c-instance whose John-world is complete but whose Bob-world is not.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.master_schema.AddRelation(
      RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  setting.dm.AddTuple("Bm", {I(0)});
  setting.dm.AddTuple("Bm", {I(1)});
  ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
  setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                           std::vector<int>{0});
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"B", {V(0)}}}, {}});
  p.set_output("T");
  Query q = Query::Fp(p);
  CInstance t(setting.schema);
  t.at("B").AddRow({Cell(V(0))});  // worlds {0} and {1}, both extensible
  ASSERT_OK_AND_ASSIGN(result, SearchIncompletenessStrong(q, t, setting, 1));
  EXPECT_TRUE(result.witness_found);
}

TEST(BoundedTest, BudgetExhaustionReported) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"E", {V(0), V(1)}}}));
  Instance db(setting.schema);
  for (int i = 0; i < 6; ++i) db.AddTuple("E", {I(i), I(i + 1)});
  SearchOptions options;
  options.max_steps = 2;
  Result<BoundedSearchResult> r =
      SearchIncompletenessGround(q, db, setting, 2, options);
  // Either it found a witness within two steps or it must report exhaustion.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace relcomp
