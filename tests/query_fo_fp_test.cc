// Tests for the FO active-domain evaluator, ∃FO⁺ → UCQ conversion, and the
// inflationary-fixpoint FP evaluator.
#include <gtest/gtest.h>

#include "query/fo.h"
#include "query/fp.h"
#include "query/query.h"
#include "query/ucq.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::V;

Instance PathInstance() {
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(2)});
  db.AddTuple("E", {I(2), I(3)});
  db.AddTuple("E", {I(3), I(4)});
  return db;
}

TEST(FoEvalTest, ExistentialAtom) {
  // Q(x) := exists y E(x, y).
  FoQuery q({V(0)}, FoFormula::Exists({V(1)},
                                      FoFormula::Atom({"E", {V(0), V(1)}})));
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains({I(1)}));
  EXPECT_FALSE(out.Contains({I(4)}));
}

TEST(FoEvalTest, NegationSinkNodes) {
  // Q(x) := (exists y E(y, x)) & !(exists z E(x, z)): sinks.
  FoPtr has_in = FoFormula::Exists({V(1)}, FoFormula::Atom({"E", {V(1), V(0)}}));
  FoPtr has_out =
      FoFormula::Exists({V(2)}, FoFormula::Atom({"E", {V(0), V(2)}}));
  FoQuery q({V(0)}, FoFormula::And({has_in, FoFormula::Not(has_out)}));
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(4)}));
}

TEST(FoEvalTest, UniversalQuantifier) {
  // Boolean: forall x (exists y E(x, y) | exists y E(y, x)).
  FoPtr some_edge = FoFormula::Or(
      {FoFormula::Exists({V(1)}, FoFormula::Atom({"E", {V(0), V(1)}})),
       FoFormula::Exists({V(1)}, FoFormula::Atom({"E", {V(1), V(0)}}))});
  FoQuery q({}, FoFormula::Forall({V(0)}, some_edge));
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 1u);  // true: every active-domain node touches an edge
}

TEST(FoEvalTest, UniversalCanFail) {
  // forall x exists y E(x, y) is false (node 4 has no successor).
  FoQuery q({}, FoFormula::Forall(
                    {V(0)}, FoFormula::Exists(
                                {V(1)}, FoFormula::Atom({"E", {V(0), V(1)}}))));
  ASSERT_OK_AND_ASSIGN(out, q.Eval(PathInstance()));
  EXPECT_TRUE(out.empty());
}

TEST(FoEvalTest, EqualityAndInequality) {
  // Q(x) := exists y (E(x, y) & x != y).
  FoQuery q({V(0)},
            FoFormula::Exists(
                {V(1)}, FoFormula::And({FoFormula::Atom({"E", {V(0), V(1)}}),
                                        FoFormula::Neq(V(0), V(1))})));
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(1)});
  db.AddTuple("E", {I(2), I(3)});
  ASSERT_OK_AND_ASSIGN(out, q.Eval(db));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(2)}));
}

TEST(FoEvalTest, ExtraDomainWidensQuantifiers) {
  // Q() := exists x !(exists y E(x, y)) & !(exists y E(y, x)): an isolated
  // value — only exists if the domain has a value outside the edges.
  FoPtr isolated = FoFormula::And(
      {FoFormula::Not(FoFormula::Exists({V(1)},
                                        FoFormula::Atom({"E", {V(0), V(1)}}))),
       FoFormula::Not(FoFormula::Exists(
           {V(1)}, FoFormula::Atom({"E", {V(1), V(0)}})))});
  FoQuery q({}, FoFormula::Exists({V(0)}, isolated));
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(2)});
  ASSERT_OK_AND_ASSIGN(no, q.Eval(db));
  EXPECT_TRUE(no.empty());
  ASSERT_OK_AND_ASSIGN(yes, q.Eval(db, {I(99)}));
  EXPECT_EQ(yes.size(), 1u);
}

TEST(FoTest, ExistentialPositiveDetection) {
  FoPtr pos = FoFormula::Exists(
      {V(0)}, FoFormula::Or({FoFormula::Atom({"E", {V(0), V(0)}}),
                             FoFormula::Neq(V(0), I(1))}));
  EXPECT_TRUE(pos->IsExistentialPositive());
  EXPECT_FALSE(FoFormula::Not(pos)->IsExistentialPositive());
  EXPECT_FALSE(FoFormula::Forall({V(0)}, pos)->IsExistentialPositive());
}

TEST(FoTest, QueryWrapperClassifiesLanguage) {
  FoQuery pos({V(0)}, FoFormula::Atom({"E", {V(0), V(0)}}));
  EXPECT_EQ(Query::Fo(pos).language(), QueryLanguage::kEFOPlus);
  FoQuery neg({V(0)}, FoFormula::Not(FoFormula::Atom({"E", {V(0), V(0)}})));
  EXPECT_EQ(Query::Fo(neg).language(), QueryLanguage::kFO);
  EXPECT_FALSE(Query::Fo(neg).IsMonotone());
}

TEST(FoToUcqTest, DisjunctionSplits) {
  // Q(x) := E(x, 1) | E(x, 2) — two disjuncts.
  FoQuery q({V(0)}, FoFormula::Or({FoFormula::Atom({"E", {V(0), I(1)}}),
                                   FoFormula::Atom({"E", {V(0), I(2)}})}));
  ASSERT_OK_AND_ASSIGN(ucq, q.ToUcq());
  EXPECT_EQ(ucq.disjuncts().size(), 2u);
}

TEST(FoToUcqTest, ConversionPreservesAnswers) {
  // Q(x) := exists y (E(x, y) & (E(y, 3) | y = 2)).
  FoPtr inner = FoFormula::Or({FoFormula::Atom({"E", {V(1), I(3)}}),
                               FoFormula::Eq(V(1), I(2))});
  FoQuery q({V(0)},
            FoFormula::Exists({V(1)},
                              FoFormula::And(
                                  {FoFormula::Atom({"E", {V(0), V(1)}}),
                                   inner})));
  Instance db = PathInstance();
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(db));
  ASSERT_OK_AND_ASSIGN(ucq, q.ToUcq());
  ASSERT_OK_AND_ASSIGN(via_ucq, ucq.Eval(db));
  EXPECT_EQ(direct, via_ucq);
}

TEST(FoToUcqTest, SiblingScopesGetFreshVariables) {
  // (exists y E(x, y)) & (exists y E(y, x)) — the two `y`s are distinct.
  FoPtr left = FoFormula::Exists({V(1)}, FoFormula::Atom({"E", {V(0), V(1)}}));
  FoPtr right = FoFormula::Exists({V(1)}, FoFormula::Atom({"E", {V(1), V(0)}}));
  FoQuery q({V(0)}, FoFormula::And({left, right}));
  Instance db = PathInstance();
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(db));
  ASSERT_OK_AND_ASSIGN(ucq, q.ToUcq());
  ASSERT_OK_AND_ASSIGN(via_ucq, ucq.Eval(db));
  EXPECT_EQ(direct, via_ucq);
  EXPECT_EQ(direct.size(), 2u);  // nodes 2 and 3
}

TEST(FoToUcqTest, NonPositiveFails) {
  FoQuery q({}, FoFormula::Not(FoFormula::Atom({"E", {I(1), I(1)}})));
  EXPECT_FALSE(q.ToUcq().ok());
}

TEST(UcqTest, UnionSemanticsAndValidation) {
  UnionQuery ucq;
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))},
                                   {RelAtom{"E", {V(0), I(2)}}}));
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))},
                                   {RelAtom{"E", {I(2), V(0)}}}));
  ASSERT_OK_AND_ASSIGN(out, ucq.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 2u);  // {1} ∪ {3}
  EXPECT_OK(ucq.Validate(testing::EdgeSchema()));
}

TEST(UcqTest, MismatchedAritiesRejected) {
  UnionQuery ucq;
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))},
                                   {RelAtom{"E", {V(0), V(1)}}}));
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0)), CTerm(V(1))},
                                   {RelAtom{"E", {V(0), V(1)}}}));
  EXPECT_FALSE(ucq.Validate(testing::EdgeSchema()).ok());
}

TEST(FpEvalTest, TransitiveClosure) {
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  tc.AddRule(FpRule{{"T", {V(0), V(2)}},
                    {{"T", {V(0), V(1)}}, {"E", {V(1), V(2)}}},
                    {}});
  tc.set_output("T");
  ASSERT_OK_AND_ASSIGN(out, tc.Eval(PathInstance()));
  EXPECT_EQ(out.size(), 6u);  // all i < j pairs on the 4-path
  EXPECT_TRUE(out.Contains({I(1), I(4)}));
}

TEST(FpEvalTest, BuiltinsInRuleBodies) {
  // Reachable-by-nontrivial-step: T(x,y) ← E(x,y), x ≠ y.
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0), V(1)}},
                   {{"E", {V(0), V(1)}}},
                   {CondAtom{V(0), true, V(1)}}});
  p.set_output("T");
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(1)});
  db.AddTuple("E", {I(1), I(2)});
  ASSERT_OK_AND_ASSIGN(out, p.Eval(db));
  EXPECT_EQ(out.size(), 1u);
}

TEST(FpEvalTest, EmptyEdbFixpointIsEmpty) {
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  tc.set_output("T");
  Instance db(testing::EdgeSchema());
  ASSERT_OK_AND_ASSIGN(out, tc.Eval(db));
  EXPECT_TRUE(out.empty());
}

TEST(FpEvalTest, IdbEdbNameCollisionRejected) {
  FpProgram p;
  p.AddRule(FpRule{{"E", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("E");
  EXPECT_FALSE(p.Eval(PathInstance()).ok());
}

TEST(FpEvalTest, UnsafeRuleRejected) {
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0), V(9)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("T");
  EXPECT_FALSE(p.Eval(PathInstance()).ok());
}

TEST(FpEvalTest, MissingOutputRejected) {
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("Zap");
  EXPECT_FALSE(p.Eval(PathInstance()).ok());
}

TEST(FpEvalTest, MonotoneUnderExtension) {
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  tc.AddRule(FpRule{{"T", {V(0), V(2)}},
                    {{"T", {V(0), V(1)}}, {"E", {V(1), V(2)}}},
                    {}});
  tc.set_output("T");
  Instance small = PathInstance();
  Instance big = small;
  big.AddTuple("E", {I(4), I(5)});
  ASSERT_OK_AND_ASSIGN(small_out, tc.Eval(small));
  ASSERT_OK_AND_ASSIGN(big_out, tc.Eval(big));
  EXPECT_TRUE(small_out.IsSubsetOf(big_out));
}

TEST(QueryWrapperTest, DisjunctsPerLanguage) {
  ConjunctiveQuery cq({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}});
  EXPECT_EQ(Query::Cq(cq).Disjuncts()->size(), 1u);
  UnionQuery ucq({cq, cq});
  EXPECT_EQ(Query::Ucq(ucq).Disjuncts()->size(), 2u);
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("T");
  EXPECT_FALSE(Query::Fp(p).Disjuncts().ok());
}

TEST(QueryWrapperTest, MaxVarId) {
  ConjunctiveQuery cq({CTerm(V(3))}, {RelAtom{"E", {V(3), V(7)}}});
  EXPECT_EQ(Query::Cq(cq).MaxVarId(), 7);
}

}  // namespace
}  // namespace relcomp
