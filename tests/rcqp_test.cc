// Tests for RCQP: the O(1) weak model (Thm 5.4), the bounded strong-model
// witness search (Thm 4.5 / Lemma 4.4), and the PTIME IND case (Cor 7.2).
#include <gtest/gtest.h>

#include "core/rcqp.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

Query EdgeQuery() {
  return Query::Cq(ConjunctiveQuery({CTerm(V(0)), CTerm(V(1))},
                                    {RelAtom{"E", {V(0), V(1)}}}));
}

TEST(RcqpWeakTest, MonotoneLanguagesAreO1True) {
  EXPECT_TRUE(*RcqpWeak(EdgeQuery()));
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("T");
  EXPECT_TRUE(*RcqpWeak(Query::Fp(p)));
}

TEST(RcqpWeakTest, FoIsUndecidable) {
  FoQuery fo({}, FoFormula::Not(FoFormula::Atom({"E", {I(0), I(0)}})));
  Result<bool> r = RcqpWeak(Query::Fo(fo));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUndecidable);
}

TEST(RcqpBoundedTest, UnboundedOpenQueryHasNoCompleteInstance) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  ASSERT_OK_AND_ASSIGN(result,
                       RcqpStrongBounded(EdgeQuery(), setting, 2));
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.bound_exhausted);
}

TEST(RcqpBoundedTest, ContradictoryQueryCompleteOnEmptyInstance) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}},
      {CondAtom{V(0), false, I(1)}, CondAtom{V(0), false, I(2)}}));
  ASSERT_OK_AND_ASSIGN(result, RcqpStrongBounded(q, setting, 1));
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.witness.Empty());
}

TEST(RcqpBoundedTest, BoundedBooleanDomainFindsWitness) {
  // B(x) over a Boolean domain with no CCs: the full relation {0, 1} is
  // complete (nothing can be added).
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));
  ASSERT_OK_AND_ASSIGN(result, RcqpStrongBounded(q, setting, 2));
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.witness.at("B").size(), 2u);
}

TEST(RcqpBoundedTest, UndecidableLanguagesRejected) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  FpProgram p;
  p.AddRule(FpRule{{"T", {V(0)}}, {{"E", {V(0), V(1)}}}, {}});
  p.set_output("T");
  EXPECT_EQ(RcqpStrongBounded(Query::Fp(p), setting, 1).status().code(),
            StatusCode::kUndecidable);
}

// ---------------------------------------------------------------------------
// The IND PTIME case (Corollary 7.2).
// ---------------------------------------------------------------------------

struct IndFixture {
  PartiallyClosedSetting setting;

  IndFixture() {
    setting.schema.AddRelation(RelationSchema(
        "Visit", {Attribute{"nhs", Domain::Infinite()},
                  Attribute{"note", Domain::Infinite()}}));
    setting.master_schema.AddRelation(
        RelationSchema("Pm", {Attribute{"nhs", Domain::Infinite()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Pm", {S("n1")});
    // IND: π(nhs)(Visit) ⊆ π(nhs)(Pm).
    ConjunctiveQuery proj({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1)}}});
    setting.ccs.emplace_back("ind", std::move(proj), "Pm",
                             std::vector<int>{0});
  }
};

TEST(RcqpIndTest, CoveredHeadVariableIsBounded) {
  IndFixture fx;
  // Q(n) :- Visit(n, y): head var n sits in the IND-covered column.
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"Visit", {V(0), V(1)}}}));
  ASSERT_OK_AND_ASSIGN(nonempty, RcqpStrongInd(q, fx.setting));
  EXPECT_TRUE(nonempty);
  ASSERT_OK_AND_ASSIGN(d, q.Disjuncts());
  EXPECT_TRUE(IsBoundedDisjunct(d[0], fx.setting.schema, fx.setting.ccs));
}

TEST(RcqpIndTest, UncoveredHeadVariableIsUnbounded) {
  IndFixture fx;
  // Q(y) :- Visit(n, y): the note column is not covered by any IND.
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(1))},
                                       {RelAtom{"Visit", {V(0), V(1)}}}));
  ASSERT_OK_AND_ASSIGN(d, q.Disjuncts());
  EXPECT_FALSE(IsBoundedDisjunct(d[0], fx.setting.schema, fx.setting.ccs));
  ASSERT_OK_AND_ASSIGN(nonempty, RcqpStrongInd(q, fx.setting));
  EXPECT_FALSE(nonempty);  // a valid valuation exists (via the master n1)
}

TEST(RcqpIndTest, UnboundedButUnsatisfiableQueryStillFine) {
  IndFixture fx;
  // Q(y) :- Visit(n, y), y = a, y = b: no valid valuation.
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(1))}, {RelAtom{"Visit", {V(0), V(1)}}},
      {CondAtom{V(1), false, S("a")}, CondAtom{V(1), false, S("b")}}));
  ASSERT_OK_AND_ASSIGN(nonempty, RcqpStrongInd(q, fx.setting));
  EXPECT_TRUE(nonempty);
}

TEST(RcqpIndTest, FiniteDomainHeadIsBounded) {
  IndFixture fx;
  fx.setting.schema.AddRelation(RelationSchema(
      "Flag", {Attribute{"b", Domain::Boolean()}}));
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"Flag", {V(0)}}}));
  ASSERT_OK_AND_ASSIGN(nonempty, RcqpStrongInd(q, fx.setting));
  EXPECT_TRUE(nonempty);
}

TEST(RcqpIndTest, NonIndCcsRejected) {
  IndFixture fx;
  ConjunctiveQuery sel({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1)}}},
                       {CondAtom{V(1), false, S("x")}});
  fx.setting.ccs.emplace_back("sel", std::move(sel), "Pm",
                              std::vector<int>{0});
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"Visit", {V(0), V(1)}}}));
  Result<bool> r = RcqpStrongInd(q, fx.setting);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RcqpIndTest, AgreesWithBoundedSearchOnBoundedCase) {
  IndFixture fx;
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"Visit", {V(0), V(1)}}}));
  ASSERT_OK_AND_ASSIGN(ptime, RcqpStrongInd(q, fx.setting));
  ASSERT_OK_AND_ASSIGN(search, RcqpStrongBounded(q, fx.setting, 2));
  EXPECT_EQ(ptime, search.found);
}

}  // namespace
}  // namespace relcomp
