// Tests for the Section 3 analyses: consistency of c-instances and
// extensibility of ground instances (Prop 3.3), including the executable
// reduction from ∀∃3SAT cross-checked against the brute-force QBF oracle.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "reductions/prop33.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

TEST(ConsistencyTest, GroundInstanceSatisfyingCcsIsConsistent) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  CInstance t(setting.schema);
  t.at("E").AddRow({Cell(I(1)), Cell(I(2))});
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(setting, t));
  EXPECT_TRUE(ok);
}

TEST(ConsistencyTest, UnsatisfiableConditionMakesRowVanishNotInconsistent) {
  // A row whose condition can never hold just never materializes; the
  // c-instance is still consistent (Mod contains the world without it).
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  CInstance t(setting.schema);
  t.at("E").AddRow(CRow{{Cell(V(0)), Cell(I(1))},
                        Condition({CondAtom{V(0), true, V(0)}})});
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(setting, t));
  EXPECT_TRUE(ok);
}

TEST(ConsistencyTest, CcCanForceInconsistency) {
  // CC: every E tuple's first column must appear in empty master ⇒ no E
  // tuples allowed; a ground unconditional row makes Mod empty.
  PartiallyClosedSetting setting;
  setting.schema = testing::EdgeSchema();
  setting.master_schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"w"}}));
  setting.dm = Instance(setting.master_schema);
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"E", {V(0), V(1)}}});
  setting.ccs.emplace_back("deny", std::move(q), "Empty1",
                           std::vector<int>{0});
  CInstance t(setting.schema);
  t.at("E").AddRow({Cell(I(1)), Cell(I(2))});
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(setting, t));
  EXPECT_FALSE(ok);
}

TEST(ConsistencyTest, ConditionCanRescueConsistency) {
  // Same denial CC, but the row is guarded by an unsatisfiable-for-all-
  // valuations condition? Use x = c with the CC denying only c: valuations
  // with x ≠ c drop the row and satisfy the CCs.
  PartiallyClosedSetting setting;
  setting.schema = testing::EdgeSchema();
  setting.master_schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"w"}}));
  setting.dm = Instance(setting.master_schema);
  ConjunctiveQuery q({CTerm(V(10))}, {RelAtom{"E", {V(10), V(11)}}});
  setting.ccs.emplace_back("deny", std::move(q), "Empty1",
                           std::vector<int>{0});
  CInstance t(setting.schema);
  t.at("E").AddRow(CRow{{Cell(V(0)), Cell(I(2))},
                        Condition::VarEqConst(V(0), I(7))});
  Instance witness;
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(setting, t, {}, nullptr, &witness));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(witness.Empty());  // the surviving worlds have no tuples
}

TEST(ConsistencyTest, WitnessWorldSatisfiesConditions) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  CInstance t(setting.schema);
  t.at("E").AddRow(CRow{{Cell(V(0)), Cell(I(5))},
                        Condition::VarNeqConst(V(0), I(5))});
  Instance witness;
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(setting, t, {}, nullptr, &witness));
  EXPECT_TRUE(ok);
  for (const Tuple& tup : witness.at("E").rows()) {
    EXPECT_NE(tup[0], I(5));
  }
}

TEST(ExtensibilityTest, OpenWorldIsExtensible) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Instance db(setting.schema);
  db.AddTuple("E", {I(1), I(2)});
  ExtensionWitness witness;
  ASSERT_OK_AND_ASSIGN(ok, IsExtensible(setting, db, {}, nullptr, &witness));
  EXPECT_TRUE(ok);
  EXPECT_EQ(witness.relation, "E");
  EXPECT_FALSE(db.at("E").Contains(witness.tuple));
}

TEST(ExtensibilityTest, FullyBoundedInstanceNotExtensible) {
  // Boolean unary relation bounded by a master copy that it already equals.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.master_schema.AddRelation(
      RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  setting.dm.AddTuple("Bm", {I(0)});
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
  setting.ccs.emplace_back("bound", std::move(q), "Bm", std::vector<int>{0});
  Instance db(setting.schema);
  db.AddTuple("B", {I(0)});
  ASSERT_OK_AND_ASSIGN(ok, IsExtensible(setting, db));
  EXPECT_FALSE(ok);  // (1) violates the bound; (0) already present
}

TEST(ConsistencyTest, BudgetExhaustionSurfaces) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  CInstance t(setting.schema);
  // Make the only worlds CC-violating so the enumerator keeps going, with a
  // tiny budget.
  setting.master_schema.AddRelation(
      RelationSchema("Empty1", {Attribute{"w"}}));
  setting.dm = Instance(setting.master_schema);
  ConjunctiveQuery q({CTerm(V(10))}, {RelAtom{"E", {V(10), V(11)}}});
  setting.ccs.emplace_back("deny", std::move(q), "Empty1",
                           std::vector<int>{0});
  t.at("E").AddRow({Cell(V(0)), Cell(V(1))});
  SearchOptions options;
  options.max_steps = 3;
  Result<bool> r = IsConsistent(setting, t, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Prop 3.3 reductions, swept against the brute-force QBF oracle.
// ---------------------------------------------------------------------------

class Prop33Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop33Sweep, ConsistencyMatchesQbfOracle) {
  Qbf qbf = MakeForallExists(2, 2, RandomCnf3(4, 3, GetParam()));
  GadgetProblem gadget = BuildConsistencyGadget(qbf);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      consistent, IsConsistent(gadget.setting, gadget.cinstance));
  // Claim: ϕ is false ⇔ Mod(T, Dm, V) ≠ ∅.
  EXPECT_EQ(consistent, !qbf.Eval()) << qbf.matrix.ToString();
}

TEST_P(Prop33Sweep, ExtensibilityMatchesQbfOracle) {
  Qbf qbf = MakeForallExists(2, 2, RandomCnf3(4, 3, GetParam()));
  GadgetProblem gadget = BuildExtensibilityGadget(qbf);
  ASSERT_OK_AND_ASSIGN(
      extensible, IsExtensible(gadget.setting, gadget.ground));
  // Claim: ϕ is true ⇔ Ext(I0, Dm, V) = ∅.
  EXPECT_EQ(!extensible, qbf.Eval()) << qbf.matrix.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop33Sweep,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace relcomp
