// Observability subsystem tests.
//
// Unit layer: histogram bucket geometry, merge algebra, quantile bounds,
// concurrent recording; metrics registry identity and both exposition
// formats; the trace phase machine's core invariant (contiguous spans sum
// exactly to the end-to-end total); the slow-decision log; the checkpoint
// progress hook; the ToString goldens.
//
// Service layer: a traced SubmitBatch produces span timelines whose
// durations account exactly for Decision::latency_micros; DumpMetrics
// exposes per-tenant latency histograms and the derived outcome counters;
// a coalesced waiter's trace records the join.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/shard_cache.h"
#include "core/types.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "sched/queue.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using obs::Histogram;
using obs::HistogramData;
using obs::LabelSet;
using obs::MetricsDump;
using obs::MetricsRegistry;
using obs::SlowDecisionLog;
using obs::SlowEntry;
using obs::Trace;
using obs::Tracer;
using obs::TraceTime;
using testing::AuditFixture;
using testing::MakeAuditFixture;
using testing::MakeSlowFixture;
using testing::SlowFixture;

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketGeometry) {
  // Bucket 0 is the value 0; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(HistogramData::BucketIndex(0), 0);
  EXPECT_EQ(HistogramData::BucketIndex(1), 1);
  EXPECT_EQ(HistogramData::BucketIndex(2), 2);
  EXPECT_EQ(HistogramData::BucketIndex(3), 2);
  EXPECT_EQ(HistogramData::BucketIndex(4), 3);
  EXPECT_EQ(HistogramData::BucketIndex(7), 3);
  EXPECT_EQ(HistogramData::BucketIndex(8), 4);
  EXPECT_EQ(HistogramData::BucketIndex(~uint64_t{0}), 64);

  EXPECT_EQ(HistogramData::BucketLowerBound(0), 0u);
  EXPECT_EQ(HistogramData::BucketUpperBound(0), 0u);
  // Every bucket's bounds round-trip through BucketIndex, and consecutive
  // buckets tile the value space with no gap or overlap.
  for (int k = 1; k < HistogramData::kNumBuckets; ++k) {
    const uint64_t lo = HistogramData::BucketLowerBound(k);
    const uint64_t hi = HistogramData::BucketUpperBound(k);
    EXPECT_EQ(lo, uint64_t{1} << (k - 1)) << "bucket " << k;
    EXPECT_EQ(HistogramData::BucketIndex(lo), k) << "bucket " << k;
    EXPECT_EQ(HistogramData::BucketIndex(hi), k) << "bucket " << k;
    EXPECT_EQ(HistogramData::BucketUpperBound(k - 1) + 1, lo) << "bucket " << k;
  }
  EXPECT_EQ(HistogramData::BucketUpperBound(64), ~uint64_t{0});
}

TEST(HistogramTest, QuantileEmptyAndSingleValue) {
  Histogram hist;
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(0.5), 0.0);

  // A single-valued distribution reports that value at every quantile: the
  // in-bucket interpolation is capped at the observed max.
  for (int i = 0; i < 100; ++i) hist.Record(8);
  const HistogramData data = hist.Snapshot();
  EXPECT_EQ(data.count, 100u);
  EXPECT_EQ(data.sum, 800u);
  EXPECT_EQ(data.max, 8u);
  EXPECT_DOUBLE_EQ(data.Quantile(0.0), 8.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.99), 8.0);
  EXPECT_DOUBLE_EQ(data.Quantile(1.0), 8.0);
}

TEST(HistogramTest, QuantileBimodalDistribution) {
  // 90 fast requests (1us) and 10 slow ones (100us): p50 must report the
  // fast mode, p99 the slow mode.
  Histogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(1);
  for (int i = 0; i < 10; ++i) hist.Record(100);
  const HistogramData data = hist.Snapshot();
  const double p50 = data.Quantile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);  // within the width of bucket [1, 2)
  // Rank 99 lands in bucket [64, 128); interpolation overshoots past the
  // largest recorded value and is clamped to max.
  EXPECT_DOUBLE_EQ(data.Quantile(0.99), 100.0);
}

TEST(HistogramTest, QuantileWithinOneBucketOfTrueValue) {
  Histogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) hist.Record(v);
  // The true median (500) lives in bucket [256, 512); the estimate may not
  // leave that bucket.
  const double p50 = hist.Snapshot().Quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Histogram ha, hb, hc;
  for (uint64_t v : {0u, 1u, 5u, 5u, 900u}) ha.Record(v);
  for (uint64_t v : {2u, 3u, 64u}) hb.Record(v);
  for (uint64_t v : {7u, 4096u, 4097u, 1u << 20}) hc.Record(v);
  const HistogramData a = ha.Snapshot();
  const HistogramData b = hb.Snapshot();
  const HistogramData c = hc.Snapshot();

  HistogramData ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramData bc = b;
  bc.Merge(c);
  HistogramData a_bc = a;
  a_bc.Merge(bc);
  HistogramData ba = b;
  ba.Merge(a);
  HistogramData ab = a;
  ab.Merge(b);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.max, a_bc.max);
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.max, ba.max);

  EXPECT_EQ(ab_c.count, a.count + b.count + c.count);
  EXPECT_EQ(ab_c.sum, a.sum + b.sum + c.sum);
  EXPECT_EQ(ab_c.max, uint64_t{1} << 20);
}

TEST(HistogramTest, ToStringGolden) {
  Histogram hist;
  hist.Record(8);
  hist.Record(8);
  hist.Record(8);
  EXPECT_EQ(hist.Snapshot().ToString(),
            "count=3 sum=24 p50=8 p95=8 p99=8 max=8");
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  // Four writers hammer one histogram; every record must land (and TSan,
  // which runs this suite in CI, must see no race).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8192;
  Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramData data = hist.Snapshot();
  EXPECT_EQ(data.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(data.sum, uint64_t{kPerThread} * (1 + 2 + 3 + 4));
  EXPECT_EQ(data.max, 4u);
  // Values 1, 2 land in buckets 1, 2; values 3, 4 in buckets 2, 3.
  EXPECT_EQ(data.buckets[1], uint64_t{kPerThread});
  EXPECT_EQ(data.buckets[2], uint64_t{2 * kPerThread});
  EXPECT_EQ(data.buckets[3], uint64_t{kPerThread});
}

// ---------------------------------------------------------------------------
// Metrics registry + exposition

TEST(MetricsRegistryTest, InstrumentsAreStableAndLabelOrderInsensitive) {
  MetricsRegistry registry;
  obs::Counter* c1 = registry.GetCounter("reqs", {{"a", "1"}, {"b", "2"}});
  obs::Counter* c2 = registry.GetCounter("reqs", {{"b", "2"}, {"a", "1"}});
  obs::Counter* c3 = registry.GetCounter("reqs", {{"a", "1"}, {"b", "3"}});
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // label sets are normalized: one instrument
  EXPECT_NE(c1, c3);  // distinct labels: distinct instrument
  c1->Inc(2);
  c2->Inc();
  EXPECT_EQ(c1->value(), 3u);
  EXPECT_EQ(c3->value(), 0u);

  obs::Gauge* g = registry.GetGauge("inflight");
  ASSERT_NE(g, nullptr);
  g->Add(5);
  g->Add(-2);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(registry.GetGauge("inflight"), g);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("reqs"), nullptr);
  // A name claimed by one type cannot be reused by another; serving paths
  // treat the null as "metrics off" instead of crashing.
  EXPECT_EQ(registry.GetGauge("reqs"), nullptr);
  EXPECT_EQ(registry.GetHistogram("reqs"), nullptr);
  EXPECT_NE(registry.GetCounter("reqs"), nullptr);
}

TEST(MetricsDumpTest, PrometheusGolden) {
  MetricsDump dump;
  dump.AddCounter("rc_total", {{"tenant", "1"}}, 3, "requests served");
  Histogram hist;
  hist.Record(1);
  hist.Record(8);
  dump.AddHistogram("lat", {}, hist.Snapshot());
  EXPECT_EQ(dump.Render(obs::DumpFormat::kPrometheus),
            "# HELP rc_total requests served\n"
            "# TYPE rc_total counter\n"
            "rc_total{tenant=\"1\"} 3\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"0\"} 0\n"
            "lat_bucket{le=\"1\"} 1\n"
            "lat_bucket{le=\"3\"} 1\n"
            "lat_bucket{le=\"7\"} 1\n"
            "lat_bucket{le=\"15\"} 2\n"
            "lat_bucket{le=\"+Inf\"} 2\n"
            "lat_sum 9\n"
            "lat_count 2\n");
}

TEST(MetricsDumpTest, JsonGoldenCarriesQuantiles) {
  MetricsDump dump;
  Histogram hist;
  hist.Record(1);
  hist.Record(8);
  dump.AddHistogram("lat", {}, hist.Snapshot());
  EXPECT_EQ(dump.Render(obs::DumpFormat::kJson),
            "[\n  {\"name\":\"lat\",\"labels\":{},\"type\":\"histogram\","
            "\"count\":2,\"sum\":9,\"p50\":2,\"p95\":8,\"p99\":8,\"max\":8}"
            "\n]\n");
}

TEST(MetricsDumpTest, PrometheusEscapesLabelValues) {
  MetricsDump dump;
  dump.AddCounter("c", {{"q", "a\"b\\c\nd"}}, 1);
  const std::string text = dump.Render(obs::DumpFormat::kPrometheus);
  EXPECT_NE(text.find("c{q=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Trace phase machine

TraceTime At(uint64_t micros) {
  return TraceTime{} + std::chrono::microseconds(micros);
}

TEST(TraceTest, PhaseTimelineSumsExactlyToTotal) {
  Trace trace(7, At(0));
  trace.Phase("admit", At(0));
  trace.Phase("queue", At(10));
  trace.Phase("evaluate", At(40));
  trace.Mark("eval:worlds", "steps=4096", At(55));
  trace.Phase("cache-store", At(90));
  trace.AnnotatePhase("admitted");
  trace.Finish("YES", At(100));

  EXPECT_TRUE(trace.finished());
  EXPECT_EQ(trace.outcome(), "YES");
  EXPECT_EQ(trace.total_micros(), 100u);
  EXPECT_EQ(trace.dropped_spans(), 0u);

  const std::vector<obs::TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "admit");
  EXPECT_EQ(spans[0].start_micros, 0u);
  EXPECT_EQ(spans[0].end_micros, 10u);
  EXPECT_EQ(spans[1].name, "queue");
  // Spans land in completion order: the zero-width mark is recorded at its
  // instant, the phase it annotates when that phase closes.
  EXPECT_EQ(spans[2].name, "eval:worlds");
  EXPECT_EQ(spans[2].start_micros, 55u);
  EXPECT_EQ(spans[2].end_micros, 55u);
  EXPECT_EQ(spans[2].note, "steps=4096");
  EXPECT_EQ(spans[3].name, "evaluate");
  EXPECT_EQ(spans[3].start_micros, 40u);
  EXPECT_EQ(spans[3].end_micros, 90u);
  EXPECT_EQ(spans[4].name, "cache-store");
  EXPECT_EQ(spans[4].note, "admitted");
  EXPECT_EQ(spans[4].end_micros, 100u);

  // THE invariant: consecutive phases share boundaries and marks are
  // zero-width, so durations sum to the end-to-end total with no gap.
  uint64_t total = 0;
  for (const obs::TraceSpan& span : spans) total += span.duration_micros();
  EXPECT_EQ(total, trace.total_micros());

  const std::string text = trace.ToString();
  EXPECT_NE(text.find("trace#7"), std::string::npos) << text;
  EXPECT_NE(text.find("[0..10us] admit"), std::string::npos) << text;
}

TEST(TraceTest, FinishIsIdempotent) {
  Trace trace(1, At(0));
  trace.Phase("admit", At(0));
  trace.Finish("YES", At(50));
  // A coalesced decision can reach two delivery paths; the first seal wins.
  trace.Finish("no", At(900));
  EXPECT_EQ(trace.outcome(), "YES");
  EXPECT_EQ(trace.total_micros(), 50u);
}

TEST(TraceTest, SpanCapCountsDrops) {
  Trace trace(2, At(0));
  for (uint64_t i = 0; i < 2 * Trace::kMaxSpans; ++i) {
    trace.Phase("p" + std::to_string(i), At(i));
  }
  trace.Finish("ok", At(500));
  EXPECT_LE(trace.spans().size(), Trace::kMaxSpans);
  EXPECT_GT(trace.dropped_spans(), 0u);
  EXPECT_EQ(trace.total_micros(), 500u);
}

TEST(TraceTest, TracerSamplesOneInN) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.MaybeTrace(At(0)), nullptr);

  tracer.Configure(3);
  std::vector<std::shared_ptr<Trace>> traces;
  for (int i = 0; i < 9; ++i) {
    if (std::shared_ptr<Trace> t = tracer.MaybeTrace(At(i))) {
      traces.push_back(std::move(t));
    }
  }
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(tracer.sampled(), 3u);
  EXPECT_NE(traces[0]->id(), traces[1]->id());
  EXPECT_NE(traces[1]->id(), traces[2]->id());
}

// ---------------------------------------------------------------------------
// Slow-decision log

std::shared_ptr<Trace> FinishedTrace(uint64_t id, uint64_t total_micros) {
  auto trace = std::make_shared<Trace>(id, At(0));
  trace->Phase("work", At(0));
  trace->Finish("ok", At(total_micros));
  return trace;
}

SlowEntry EntryOf(uint64_t id, uint64_t micros) {
  SlowEntry entry;
  entry.micros = micros;
  entry.trace_id = id;
  entry.tenant = "7";
  entry.kind = "RCDP_STRONG";
  entry.trace = FinishedTrace(id, micros);
  return entry;
}

TEST(SlowDecisionLogTest, KeepsWorstEntriesBounded) {
  SlowDecisionLog log;
  EXPECT_EQ(log.capacity(), 0u);
  log.Offer(EntryOf(1, 999));  // disabled: dropped
  EXPECT_EQ(log.size(), 0u);

  log.Configure(2);
  log.Offer(EntryOf(1, 10));
  log.Offer(EntryOf(2, 30));
  log.Offer(EntryOf(3, 20));
  log.Offer(EntryOf(4, 40));

  const auto worst = log.Worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].micros, 40u);
  EXPECT_EQ(worst[1].micros, 30u);
  // The cross-linking identity fields ride each entry.
  EXPECT_EQ(worst[0].trace_id, 4u);
  EXPECT_EQ(worst[0].tenant, "7");
  EXPECT_EQ(worst[0].kind, "RCDP_STRONG");
  ASSERT_NE(worst[0].trace, nullptr);
  EXPECT_EQ(worst[0].trace->total_micros(), 40u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.capacity(), 2u);

  // Entries need no trace at all (the watchdog's stall entries): ranked
  // purely by the stamped micros.
  SlowEntry stall;
  stall.micros = 99;
  stall.note = "watchdog: stalled";
  log.Offer(std::move(stall));
  EXPECT_EQ(log.Worst().front().micros, 99u);
  EXPECT_EQ(log.Worst().front().trace, nullptr);
}

// ---------------------------------------------------------------------------
// Checkpoint progress hook

TEST(CheckpointProgressTest, HookFiresAtStartAndEveryPoll) {
  std::vector<std::pair<std::string, uint64_t>> calls;
  SearchOptions::SearchProgressFn hook =
      [&calls](const char* what, uint64_t steps) {
        calls.emplace_back(what, steps);
      };
  SearchOptions options;
  options.checkpoint_interval = 4;
  options.progress = &hook;

  // The hook alone enables polling: construction announces the loop at
  // steps=0, then every interval-aligned Tick reports progress.
  SearchCheckpoint checkpoint(options, "test-loop");
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_pair(std::string("test-loop"), uint64_t{0}));
  for (int i = 0; i < 8; ++i) EXPECT_OK(checkpoint.Tick());
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[1].second, 4u);
  EXPECT_EQ(calls[2].second, 8u);

  // No hook, no deadline, no token: polling stays off entirely.
  SearchOptions quiet;
  quiet.checkpoint_interval = 4;
  SearchCheckpoint silent(quiet, "quiet-loop");
  for (int i = 0; i < 8; ++i) EXPECT_OK(silent.Tick());
  EXPECT_EQ(calls.size(), 3u);
}

// ---------------------------------------------------------------------------
// ToString goldens

TEST(CountersGoldenTest, SearchStatsToString) {
  SearchStats stats;
  EXPECT_EQ(stats.ToString(),
            "valuations=0 worlds=0 extensions=0 cc_checks=0 query_evals=0");
  stats.valuations = 1;
  stats.worlds = 2;
  stats.extensions = 3;
  stats.cc_checks = 4;
  stats.query_evals = 5;
  EXPECT_EQ(stats.ToString(),
            "valuations=1 worlds=2 extensions=3 cc_checks=4 query_evals=5");
}

TEST(CountersGoldenTest, EngineCountersCompactElidesZeroSections) {
  EngineCounters counters;
  EXPECT_EQ(counters.ToString(),
            "requests=0 cache_hits=0 cache_misses=0 coalesced=0 errors=0 | "
            "valuations=0 worlds=0 extensions=0 cc_checks=0 query_evals=0");
  counters.requests = 3;
  counters.cache_hits = 1;
  counters.cache_misses = 2;
  counters.rejected = 4;
  counters.waited = 2;
  counters.wait_micros = 10;
  counters.max_wait_micros = 7;
  EXPECT_EQ(counters.ToString(),
            "requests=3 cache_hits=1 cache_misses=2 coalesced=0 errors=0 "
            "rejected=4 avg_wait_us=5 max_wait_us=7 | "
            "valuations=0 worlds=0 extensions=0 cc_checks=0 query_evals=0");
}

TEST(CountersGoldenTest, EngineCountersVerbosePrintsEveryField) {
  EngineCounters counters;
  counters.requests = 1;
  counters.cache_hits = 2;
  counters.cache_misses = 3;
  counters.coalesced = 4;
  counters.errors = 5;
  counters.rejected = 6;
  counters.expired = 7;
  counters.cancelled = 8;
  counters.shed_running = 9;
  counters.aborted_steps = 10;
  counters.waited = 11;
  counters.wait_micros = 12;
  counters.max_wait_micros = 13;
  counters.evictions = 14;
  counters.admission_rejects = 15;
  counters.cache_bytes = 16;
  counters.search.valuations = 17;
  counters.search.worlds = 18;
  counters.search.extensions = 19;
  counters.search.cc_checks = 20;
  counters.search.query_evals = 21;
  EXPECT_EQ(counters.ToString(/*verbose=*/true),
            "requests=1 cache_hits=2 cache_misses=3 coalesced=4 errors=5 "
            "rejected=6 expired=7 cancelled=8 shed_running=9 aborted_steps=10 "
            "waited=11 wait_micros=12 max_wait_micros=13 evictions=14 "
            "admission_rejects=15 cache_bytes=16 | "
            "valuations=17 worlds=18 extensions=19 cc_checks=20 "
            "query_evals=21");
  // Verbose prints zeros too: two dumps always diff line-for-line.
  EngineCounters zero;
  EXPECT_EQ(zero.ToString(/*verbose=*/true),
            "requests=0 cache_hits=0 cache_misses=0 coalesced=0 errors=0 "
            "rejected=0 expired=0 cancelled=0 shed_running=0 aborted_steps=0 "
            "waited=0 wait_micros=0 max_wait_micros=0 evictions=0 "
            "admission_rejects=0 cache_bytes=0 | "
            "valuations=0 worlds=0 extensions=0 cc_checks=0 query_evals=0");
}

// ---------------------------------------------------------------------------
// Layer instrumentation: queue residency, cache event sink

TEST(QueueMetricsTest, PopRecordsQueueResidency) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kBlock);
  Histogram queue_wait, token_wait;
  queue.AttachMetrics(&queue_wait, &token_wait);

  for (int i = 0; i < 3; ++i) {
    sched::Task task;
    task.fn = [](sched::TaskOutcome, std::chrono::microseconds) {};
    ASSERT_TRUE(queue.Push(std::move(task)));
  }
  for (int i = 0; i < 3; ++i) {
    sched::Task task;
    sched::TaskOutcome outcome;
    ASSERT_TRUE(queue.Pop(&task, &outcome));
    EXPECT_EQ(outcome, sched::TaskOutcome::kRun);
  }
  // Every pop records its task's residency; nobody blocked on admission.
  EXPECT_EQ(queue_wait.Snapshot().count, 3u);
  EXPECT_EQ(token_wait.Snapshot().count, 0u);
}

TEST(CacheMetricsTest, EventSinkCountsOutcomesAndPublishesGauges) {
  MetricsRegistry registry;
  cache::CacheEventSink sink;
  sink.hits = registry.GetCounter("hits");
  sink.misses = registry.GetCounter("misses");
  sink.evictions = registry.GetCounter("evictions");
  sink.admission_rejects = registry.GetCounter("admission_rejects");
  sink.resident_bytes = registry.GetGauge("resident_bytes");
  sink.resident_entries = registry.GetGauge("resident_entries");

  cache::ShardCacheOptions options;
  options.max_entries = 2;
  options.admission_filter = false;  // always admit: force plain eviction
  cache::ShardCache cache(options);
  cache.AttachEvents(sink);

  Decision value;
  value.answer = true;
  Decision out;
  EXPECT_FALSE(cache.Get(RequestCacheKey{1, 1}, &out));
  EXPECT_EQ(sink.misses->value(), 1u);

  EXPECT_TRUE(cache.Put(RequestCacheKey{1, 1}, value));
  EXPECT_TRUE(cache.Get(RequestCacheKey{1, 1}, &out));
  EXPECT_EQ(sink.hits->value(), 1u);
  EXPECT_EQ(sink.resident_entries->value(), 1);
  EXPECT_GT(sink.resident_bytes->value(), 0);

  // Third insert overflows max_entries=2: one eviction, gauges track it.
  EXPECT_TRUE(cache.Put(RequestCacheKey{2, 2}, value));
  EXPECT_TRUE(cache.Put(RequestCacheKey{3, 3}, value));
  EXPECT_EQ(sink.evictions->value(), 1u);
  EXPECT_EQ(sink.resident_entries->value(), 2);
  EXPECT_EQ(sink.admission_rejects->value(), 0u);

  cache.Clear();
  EXPECT_EQ(sink.resident_entries->value(), 0);
  EXPECT_EQ(sink.resident_bytes->value(), 0);
}

// ---------------------------------------------------------------------------
// Service acceptance: traced requests, latency accounting, DumpMetrics

ServiceOptions ObsOptions(size_t workers, uint64_t trace_sample,
                          size_t slow_log) {
  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = 64;
  options.memoize = true;
  options.trace_sample = trace_sample;
  options.slow_log = slow_log;
  return options;
}

bool HasSpan(const obs::Trace& trace, const std::string& name,
             const obs::TraceSpan** out = nullptr) {
  static obs::TraceSpan scratch;  // storage for the returned copy
  for (const obs::TraceSpan& span : trace.spans()) {
    if (span.name == name) {
      if (out != nullptr) {
        scratch = span;
        *out = &scratch;
      }
      return true;
    }
  }
  return false;
}

TEST(ServiceObsTest, TracedBatchTimelineAccountsForLatencyExactly) {
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(ObsOptions(/*workers=*/2, /*trace_sample=*/1,
                                         /*slow_log=*/8));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  std::vector<DecisionRequest> requests;
  for (const Query* q : {&fx.by_patient, &fx.all_cities}) {
    DecisionRequest request;
    request.kind = ProblemKind::kRcdpStrong;
    request.query = *q;
    request.cinstance = fx.audited;
    requests.push_back(std::move(request));
  }
  const std::vector<Decision> decisions = service.SubmitBatch(handle, requests);
  ASSERT_EQ(decisions.size(), 2u);
  for (const Decision& decision : decisions) EXPECT_OK(decision.status);

  const auto entries = service.SlowDecisions();
  ASSERT_EQ(entries.size(), 2u);  // sample=1: every submission traced
  std::vector<uint64_t> totals;
  for (const auto& entry : entries) {
    const auto& trace = entry.trace;
    EXPECT_EQ(entry.trace_id, trace->id());
    EXPECT_EQ(entry.micros, trace->total_micros());
    EXPECT_FALSE(entry.tenant.empty());
    EXPECT_FALSE(entry.kind.empty());
    ASSERT_TRUE(trace->finished());
    // The acceptance criterion: the span timeline covers the request's
    // whole life, so durations sum EXACTLY to the end-to-end total (phases
    // share boundary timestamps; marks are zero-width).
    const std::vector<obs::TraceSpan> spans = trace->spans();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans.front().name, "admit");
    uint64_t span_sum = 0;
    for (const obs::TraceSpan& span : spans) span_sum += span.duration_micros();
    EXPECT_EQ(span_sum, trace->total_micros()) << trace->ToString();
    EXPECT_TRUE(HasSpan(*trace, "queue")) << trace->ToString();
    EXPECT_TRUE(HasSpan(*trace, "cache-lookup")) << trace->ToString();
    EXPECT_TRUE(HasSpan(*trace, "evaluate")) << trace->ToString();
    EXPECT_TRUE(HasSpan(*trace, "cache-store")) << trace->ToString();
    totals.push_back(trace->total_micros());
  }

  // Decision::latency_micros and the trace total are stamped from the same
  // clock read, so the two views of end-to-end latency agree exactly.
  std::vector<uint64_t> latencies;
  for (const Decision& decision : decisions) {
    latencies.push_back(decision.latency_micros);
  }
  std::sort(totals.begin(), totals.end());
  std::sort(latencies.begin(), latencies.end());
  EXPECT_EQ(totals, latencies);

  // Resubmitting the same batch hits the cache; the hit's trace shows the
  // lookup outcome and never reaches an evaluate phase.
  const std::vector<Decision> again = service.SubmitBatch(handle, requests);
  for (const Decision& decision : again) EXPECT_TRUE(decision.from_cache);
  bool saw_hit_trace = false;
  for (const auto& entry : service.SlowDecisions()) {
    const auto& trace = entry.trace;
    const obs::TraceSpan* lookup = nullptr;
    if (HasSpan(*trace, "cache-lookup", &lookup) && lookup->note == "hit") {
      EXPECT_FALSE(HasSpan(*trace, "evaluate")) << trace->ToString();
      saw_hit_trace = true;
    }
  }
  EXPECT_TRUE(saw_hit_trace);
}

TEST(ServiceObsTest, DumpMetricsExposesPerTenantLatencyAndOutcomes) {
  AuditFixture fx_a = MakeAuditFixture(0);
  AuditFixture fx_b = MakeAuditFixture(1);
  CompletenessService service(ObsOptions(/*workers=*/2, /*trace_sample=*/2,
                                         /*slow_log=*/4));
  ASSERT_OK_AND_ASSIGN(handle_a, service.RegisterSetting(fx_a.setting));
  ASSERT_OK_AND_ASSIGN(handle_b, service.RegisterSetting(fx_b.setting));

  for (const AuditFixture* fx : {&fx_a, &fx_b}) {
    std::vector<DecisionRequest> requests;
    for (const Query* q : {&fx->by_patient, &fx->all_cities}) {
      DecisionRequest request;
      request.kind = ProblemKind::kRcdpStrong;
      request.query = *q;
      request.cinstance = fx->audited;
      requests.push_back(std::move(request));
    }
    service.SubmitBatch(fx == &fx_a ? handle_a : handle_b, requests);
  }

  const std::string prom = service.DumpMetrics();
  // Per-tenant end-to-end latency histograms with full bucket series.
  EXPECT_NE(prom.find("# TYPE relcomp_request_latency_micros histogram"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("relcomp_request_latency_micros_count{tenant=\"1\"} 2"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("relcomp_request_latency_micros_count{tenant=\"2\"} 2"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("relcomp_queue_wait_micros"), std::string::npos) << prom;
  // Derived outcome partition: four cold evaluations, no hits yet.
  EXPECT_NE(prom.find(
                "relcomp_decisions_total{outcome=\"miss\",tenant=\"1\"} 2"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find(
                "relcomp_decisions_total{outcome=\"hit\",tenant=\"2\"} 0"),
            std::string::npos) << prom;
  // Cache-layer counters flow through the event sink.
  EXPECT_NE(prom.find("relcomp_cache_misses_total{tenant=\"1\"} 2"),
            std::string::npos) << prom;
  // Nothing is still in flight once SubmitBatch returned.
  EXPECT_NE(prom.find("relcomp_inflight_requests 0"), std::string::npos)
      << prom;
  // trace_sample=2 sampled half of the four submissions.
  EXPECT_NE(prom.find("relcomp_traces_sampled_total 2"), std::string::npos)
      << prom;
  // A family header appears once even with two tenants: rows stay grouped.
  const std::string header = "# TYPE relcomp_request_latency_micros histogram";
  EXPECT_EQ(prom.find(header), prom.rfind(header)) << prom;

  const std::string json = service.DumpMetrics(obs::DumpFormat::kJson);
  EXPECT_NE(json.find("\"name\":\"relcomp_request_latency_micros\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(ServiceObsTest, MetricsOffStillServesDerivedCounters) {
  AuditFixture fx = MakeAuditFixture();
  ServiceOptions options = ObsOptions(/*workers=*/0, /*trace_sample=*/0,
                                      /*slow_log=*/0);
  options.metrics = false;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;
  service.SubmitBatch(handle, {request});

  const std::string prom = service.DumpMetrics();
  // Registry families are dark, but the EngineCounters-derived rows (the
  // source of truth for the outcome partition) still render.
  EXPECT_EQ(prom.find("relcomp_request_latency_micros"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("relcomp_decisions_total{outcome=\"miss\",tenant=\"1\"}"
                      " 1"),
            std::string::npos) << prom;
  EXPECT_TRUE(service.SlowDecisions().empty());
}

TEST(ServiceObsTest, CoalescedWaiterTraceRecordsTheJoin) {
  // One worker, one expensive request submitted twice: the second
  // submission must join the first's flight group, and its trace must say
  // so instead of showing an evaluation of its own.
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/6, /*vars=*/4);
  ServiceOptions options = ObsOptions(/*workers=*/1, /*trace_sample=*/1,
                                      /*slow_log=*/16);
  options.coalesce = true;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  ServiceRequest request;
  request.setting = handle;
  request.request = slow.Request();
  // Long enough to keep the flight group open across both submissions,
  // bounded so the test finishes quickly (the abort is the expected end).
  request.request.options.max_steps = 1'000'000;

  std::future<Decision> first = service.SubmitAsync(request);
  std::future<Decision> second = service.SubmitAsync(request);
  const Decision d2 = second.get();
  const Decision d1 = first.get();
  EXPECT_EQ(d1.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(d2.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(d2.from_cache);  // served by the coalesced run
  EXPECT_NE(d2.note.find("coalesced"), std::string::npos) << d2.note;

  bool saw_join = false;
  for (const auto& entry : service.SlowDecisions()) {
    const auto& trace = entry.trace;
    const obs::TraceSpan* join = nullptr;
    if (HasSpan(*trace, "coalesce-join", &join)) {
      saw_join = true;
      EXPECT_EQ(join->note.rfind("joined", 0), 0u) << join->note;
      EXPECT_FALSE(HasSpan(*trace, "evaluate")) << trace->ToString();
      EXPECT_TRUE(trace->finished());
    }
  }
  EXPECT_TRUE(saw_join);
}

TEST(ServiceObsTest, EvaluationProgressMarksLandInTraces) {
  // A search long enough to cross checkpoint polls turns them into
  // eval: marks on the sampled trace (SearchCheckpoint's progress hook).
  SlowFixture slow = MakeSlowFixture(/*master_rows=*/4, /*vars=*/3);
  CompletenessService service(ObsOptions(/*workers=*/0, /*trace_sample=*/1,
                                         /*slow_log=*/4));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(slow.setting));

  ServiceRequest request;
  request.setting = handle;
  request.request = slow.Request();
  request.request.options.max_steps = 100'000;
  request.request.options.checkpoint_interval = 1024;
  service.SubmitAsync(std::move(request)).get();

  const auto entries = service.SlowDecisions();
  ASSERT_FALSE(entries.empty());
  size_t eval_marks = 0;
  for (const auto& entry : entries) {
    for (const obs::TraceSpan& span : entry.trace->spans()) {
      if (span.name.rfind("eval:", 0) == 0) {
        ++eval_marks;
        EXPECT_EQ(span.start_micros, span.end_micros);  // zero-width mark
      }
    }
  }
  EXPECT_GT(eval_marks, 0u);
}

}  // namespace
}  // namespace relcomp
