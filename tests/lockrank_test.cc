// Death tests for the runtime lock-rank checker in util/mutex.h: acquiring
// relcomp::Mutexes out of rank order, at equal rank, or recursively must
// abort with a diagnostic naming both the offending acquisition and the
// locks already held. These tests prove the checker actually fires — the
// static thread-safety analysis is exercised separately by the clang CI job
// and the tests/compile/ syntax-only checks.

#include "util/mutex.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

#if RELCOMP_LOCK_RANK_CHECKS

class LockRankDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    // Re-execute the binary for the death branch instead of forking the
    // (possibly multi-threaded — TSan, gtest internals) parent directly.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  // kCache (40) then kShard (20): the real-world deadlock shape this guards
  // against is a cache callback reaching back up into its shard.
  Mutex cache_mu(LockRank::kCache, "test.cache");
  Mutex shard_mu(LockRank::kShard, "test.shard");
  EXPECT_DEATH(
      {
        MutexLock hold_cache(cache_mu);
        MutexLock hold_shard(shard_mu);
      },
      "lock-rank violation: acquiring \"test.shard\" \\(rank 20\\) while "
      "already holding \"test.cache\" \\(rank 40\\)");
}

TEST_F(LockRankDeathTest, SameRankAcquisitionAborts) {
  // Equal ranks never nest — two shard mutexes held together is exactly the
  // cross-shard deadlock the rank discipline exists to rule out.
  Mutex a(LockRank::kShard, "test.shard_a");
  Mutex b(LockRank::kShard, "test.shard_b");
  EXPECT_DEATH(
      {
        MutexLock hold_a(a);
        MutexLock hold_b(b);
      },
      "lock-rank violation");
}

// The static analysis would reject a double-Lock at compile time on clang,
// so the runtime checker's recursive branch needs an explicitly opted-out
// helper to be reachable at all — a nice illustration of the two layers.
void LockTwice(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS {
  mu.Lock();
  mu.Lock();  // aborts before deadlocking on ourselves
  mu.Unlock();
  mu.Unlock();
}

TEST_F(LockRankDeathTest, RecursiveAcquisitionAborts) {
  Mutex mu(LockRank::kShard, "test.recursive");
  EXPECT_DEATH(LockTwice(mu), "recursive acquisition of mutex "
                              "\"test.recursive\"");
}

TEST_F(LockRankDeathTest, DiagnosticListsHeldLocks) {
  Mutex outer(LockRank::kServiceRegistry, "test.registry");
  Mutex inner(LockRank::kSchedQueue, "test.queue");
  Mutex violator(LockRank::kShard, "test.late_shard");
  EXPECT_DEATH(
      {
        MutexLock hold_outer(outer);
        MutexLock hold_inner(inner);
        MutexLock hold_violator(violator);
      },
      "locks held by this thread");
}

TEST(LockRankTest, AscendingChainIsAllowed) {
  // The real registration chain: registry → shard → cache → budget.
  Mutex registry(LockRank::kServiceRegistry, "test.registry");
  Mutex shard(LockRank::kShard, "test.shard");
  Mutex cache(LockRank::kCache, "test.cache");
  Mutex budget(LockRank::kCacheBudget, "test.budget");
  MutexLock l1(registry);
  MutexLock l2(shard);
  MutexLock l3(cache);
  MutexLock l4(budget);
}

TEST(LockRankTest, SequentialReacquisitionIsAllowed) {
  // Rank order constrains NESTING only; dropping a high-rank lock and then
  // taking a low-rank one is fine (the counters/DumpMetrics pattern).
  Mutex low(LockRank::kShard, "test.low");
  Mutex high(LockRank::kObsTrace, "test.high");
  { MutexLock hold(high); }
  { MutexLock hold(low); }
  { MutexLock hold(high); }
}

TEST(LockRankTest, CondVarWaitKeepsHeldStackConsistent) {
  // A cv wait unlocks and relocks through the ranked Mutex; afterwards the
  // thread's held-lock stack must be exactly as before the wait, so a
  // higher-rank acquisition still succeeds.
  Mutex mu(LockRank::kSchedQueue, "test.cv_mu");
  Mutex after(LockRank::kObsTrace, "test.cv_after");
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    MutexLock nested(after);  // would abort if the wait corrupted the stack
  }
  waker.join();
}

TEST(LockRankTest, TryLockParticipatesInTracking) {
  Mutex mu(LockRank::kShard, "test.trylock");
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
  // A released try-lock leaves no residue: a fresh Lock still works.
  mu.Lock();
  mu.Unlock();
}

#else  // !RELCOMP_LOCK_RANK_CHECKS

TEST(LockRankTest, CheckerCompiledOut) {
  GTEST_SKIP() << "RELCOMP_LOCK_RANK_CHECKS is off in this build "
                  "(Release, or explicitly disabled)";
}

#endif  // RELCOMP_LOCK_RANK_CHECKS

}  // namespace
}  // namespace relcomp
