namespace relcomp {

const char* MetricName() { return "relcomp_bogus_total"; }

}  // namespace relcomp
