#include <chrono>
#include <mutex>
#include <thread>

namespace relcomp {

std::mutex g_mu;

void Work() {
  std::lock_guard<std::mutex> hold(g_mu);
  std::thread worker([] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  worker.join();
}

int Open() {
  int fd = socket(2, 1, 0);
  return ::shutdown(fd, 2) + fd;
}

}  // namespace relcomp
