namespace relcomp {
inline int Answer() { return 42; }
}  // namespace relcomp
