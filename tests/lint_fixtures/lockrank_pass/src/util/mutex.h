#ifndef FIXTURE_UTIL_MUTEX_H_
#define FIXTURE_UTIL_MUTEX_H_

namespace relcomp {

enum class LockRank : int {
  kAlpha = 10,
  kBeta = 20,
};

class Mutex {};
class MutexLock {};

}  // namespace relcomp

#endif  // FIXTURE_UTIL_MUTEX_H_
