#include "util/mutex.h"

namespace relcomp {

class Widget {
 public:
  void Good() {
    MutexLock outer(a_mu_);
    {
      MutexLock inner(b_mu_);
    }
  }

 private:
  Mutex a_mu_{LockRank::kAlpha, "Widget::a_mu_"};
  Mutex b_mu_{LockRank::kBeta, "Widget::b_mu_"};
};

}  // namespace relcomp
