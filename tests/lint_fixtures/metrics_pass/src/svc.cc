#include "obs/metric_names.h"

namespace relcomp {

// Call sites name families through the registry constants, never through
// string literals.
int Use() { return 1; }

}  // namespace relcomp
