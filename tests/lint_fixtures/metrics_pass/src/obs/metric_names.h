#ifndef FIXTURE_OBS_METRIC_NAMES_H_
#define FIXTURE_OBS_METRIC_NAMES_H_

#define FIXTURE_METRIC_FAMILIES(X)                                 \
  X(RequestsTotal, "relcomp_requests_total", kCounter, "tenant",   \
    "requests submitted")                                          \
  X(InflightRequests, "relcomp_inflight_requests", kGauge, "",     \
    "requests currently executing")

#endif  // FIXTURE_OBS_METRIC_NAMES_H_
