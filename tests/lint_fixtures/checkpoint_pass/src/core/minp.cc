namespace relcomp {

// Direct poll: the loop body Ticks.
int CountDown(SearchCheckpoint& checkpoint, int n) {
  int steps = 0;
  while (n > 0) {
    checkpoint.Tick();
    --n;
    ++steps;
  }
  return steps;
}

// Transitive poll: PollOnce Ticks, so a loop calling it has evidence via
// the polling-function fixpoint.
int PollOnce(SearchCheckpoint& checkpoint) { return checkpoint.Tick(); }

int Sum(SearchCheckpoint& checkpoint, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) total += PollOnce(checkpoint);
  return total;
}

// Waived loop: bounded, documented, accepted.
int Fixed() {
  int total = 0;
  // LINT:waive(checkpoint-coverage, three iterations by construction)
  for (int i = 0; i < 3; ++i) ++total;
  return total;
}

}  // namespace relcomp
