#include "util/mutex.h"

namespace relcomp {

class Widget {
 public:
  void Bad() {
    MutexLock outer(b_mu_);
    {
      MutexLock inner(a_mu_);
    }
  }

 private:
  Mutex a_mu_{LockRank::kAlpha, "Widget::a_mu_"};
  Mutex b_mu_{LockRank::kBeta, "Widget::b_mu_"};
  Mutex c_mu_{LockRank::kGamma, "Widget::c_mu_"};
};

}  // namespace relcomp
