#ifndef FIXTURE_OK_H_
#define FIXTURE_OK_H_

namespace relcomp {
inline int Answer() { return 42; }
}  // namespace relcomp

#endif  // FIXTURE_OK_H_
