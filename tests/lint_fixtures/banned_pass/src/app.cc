namespace relcomp {

// Member calls and names qualified into another namespace share their
// spelling with socket syscalls but are not syscalls.
int Use(Conn* conn, Chan& chan) {
  int sent = conn->send(1);
  int accepted = chan.accept(2);
  auto bound = std::bind(Use, conn, chan);
  (void)bound;
  return sent + accepted;
}

}  // namespace relcomp
