namespace relcomp {
namespace net {

// src/net/ is where the sanctioned socket wrappers live: raw socket
// syscalls are allowed here and only here.
int OpenListener() {
  int fd = ::socket(2, 1, 0);
  ::bind(fd, nullptr, 0);
  ::listen(fd, 8);
  poll(nullptr, 0, 0);
  return fd;
}

}  // namespace net
}  // namespace relcomp
