#include <mutex>

namespace relcomp {

// src/util/ is where the sanctioned wrappers live: raw primitives are
// allowed here and only here.
std::mutex g_wrapped;

}  // namespace relcomp
