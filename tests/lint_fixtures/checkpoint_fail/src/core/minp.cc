namespace relcomp {

// A search loop that never polls a checkpoint: the rule must flag the
// `while` below (and only it — the inner `for` is part of the same nest).
int CountDown(int n) {
  int steps = 0;
  while (n > 0) {
    --n;
    for (int i = 0; i < 2; ++i) ++steps;
  }
  return steps;
}

}  // namespace relcomp
