// relcomp_lint tests: the fixture corpus (one passing and one violating
// micro-tree per rule, asserting exact rule ids and file:line anchors and
// the CLI's exit status), plus the gate that the REAL tree is lint-clean —
// which is what makes the fixtures meaningful: the rules both fire on
// seeded violations and stay quiet on the code we actually ship.
#include <sys/wait.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace relcomp {
namespace lint {
namespace {

std::vector<Finding> RunOn(const std::string& root) {
  Options opts;
  opts.root = root;
  std::string error;
  std::vector<Finding> findings = RunLint(opts, &error);
  EXPECT_EQ(error, "");
  return findings;
}

std::string Fixture(const std::string& name) {
  return std::string(RELCOMP_LINT_FIXTURES) + "/" + name;
}

::testing::AssertionResult Has(const std::vector<Finding>& findings,
                               const std::string& rule,
                               const std::string& file, int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.file == file && f.line == line) {
      return ::testing::AssertionSuccess();
    }
  }
  auto result = ::testing::AssertionFailure()
                << "no " << rule << " finding at " << file << ":" << line
                << "; got:";
  for (const Finding& f : findings) result << "\n  " << FormatFinding(f);
  return result;
}

// ------------------------------------------------------ checkpoint rule --

TEST(CheckpointRule, FlagsOutermostLoopWithoutPoll) {
  const std::vector<Finding> fs = RunOn(Fixture("checkpoint_fail"));
  ASSERT_EQ(fs.size(), 1u) << "inner loop of the same nest must not "
                              "double-report";
  EXPECT_EQ(fs[0].rule, "checkpoint-coverage");
  EXPECT_EQ(fs[0].file, "src/core/minp.cc");
  EXPECT_EQ(fs[0].line, 7);
}

TEST(CheckpointRule, AcceptsDirectTransitiveAndWaivedPolls) {
  EXPECT_TRUE(RunOn(Fixture("checkpoint_pass")).empty());
}

// -------------------------------------------------------- lockrank rule --

TEST(LockRankRule, FlagsUnregisteredRankNestingAndTableDrift) {
  const std::vector<Finding> fs = RunOn(Fixture("lockrank_fail"));
  EXPECT_TRUE(Has(fs, "lock-rank-sync", "src/svc.cc", 17));   // kGamma
  EXPECT_TRUE(Has(fs, "lock-rank-sync", "src/svc.cc", 10));   // 10 under 20
  EXPECT_TRUE(Has(fs, "lock-rank-sync", "README.md", 7));     // value drift
  EXPECT_TRUE(Has(fs, "lock-rank-sync", "README.md", 3));     // kBeta missing
  EXPECT_EQ(fs.size(), 4u);
}

TEST(LockRankRule, AcceptsRegisteredAscendingAndSyncedTable) {
  EXPECT_TRUE(RunOn(Fixture("lockrank_pass")).empty());
}

// --------------------------------------------------------- metrics rule --

TEST(MetricsRule, FlagsLooseLiteralAndTableDrift) {
  const std::vector<Finding> fs = RunOn(Fixture("metrics_fail"));
  EXPECT_TRUE(Has(fs, "metric-registry", "src/svc.cc", 3));  // loose literal
  EXPECT_TRUE(Has(fs, "metric-registry", "README.md", 7));   // type drift
  EXPECT_TRUE(Has(fs, "metric-registry", "README.md", 8));   // unknown row
  EXPECT_TRUE(Has(fs, "metric-registry", "README.md", 3));   // missing row
  EXPECT_EQ(fs.size(), 4u);
}

TEST(MetricsRule, AcceptsRegistryOnlyNamesAndSyncedTable) {
  EXPECT_TRUE(RunOn(Fixture("metrics_pass")).empty());
}

// ---------------------------------------------------------- banned rule --

TEST(BannedRule, FlagsRawPrimitivesAndMissingGuard) {
  const std::vector<Finding> fs = RunOn(Fixture("banned_fail"));
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/nohdr.h", 1));  // no guard
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 7));   // std::mutex
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 11));  // std::thread
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 12));  // sleep_for
  // Line 10 carries two findings: std::lock_guard and its std::mutex
  // template argument.
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 10));
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 17));  // socket(
  EXPECT_TRUE(Has(fs, "banned-constructs", "src/svc.cc", 18));  // ::shutdown(
  EXPECT_EQ(fs.size(), 8u);
}

TEST(BannedRule, AllowsRawPrimitivesInsideUtil) {
  EXPECT_TRUE(RunOn(Fixture("banned_pass")).empty());
}

// ------------------------------------------------------------- the tree --

// The real repository is lint-clean. Every violation must be fixed or
// carry a LINT:waive with a reason — this is the same gate CI runs via
// the relcomp_lint_tree ctest, duplicated here so `ctest -R lint` tells
// the whole story in one place.
TEST(RealTree, IsLintClean) {
  const std::vector<Finding> fs = RunOn(RELCOMP_SOURCE_DIR);
  for (const Finding& f : fs) ADD_FAILURE() << FormatFinding(f);
}

// ------------------------------------------------------------------ CLI --

int ExitStatusOf(const std::string& command) {
  const int raw = std::system((command + " > /dev/null 2>&1").c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

TEST(Cli, ExitStatusReflectsFindings) {
  const std::string bin = RELCOMP_LINT_BIN;
  EXPECT_EQ(ExitStatusOf(bin + " --root " + Fixture("banned_fail")), 1);
  EXPECT_EQ(ExitStatusOf(bin + " --root " + Fixture("banned_pass")), 0);
  EXPECT_EQ(ExitStatusOf(bin + " --root /nonexistent-lint-root"), 2);
  EXPECT_EQ(ExitStatusOf(bin + " --rule no-such-rule"), 2);
}

TEST(Cli, RuleFilterRunsOnlyThatRule) {
  Options opts;
  opts.root = Fixture("lockrank_fail");
  opts.rules = {"banned-constructs"};
  std::string error;
  EXPECT_TRUE(RunLint(opts, &error).empty())
      << "lockrank_fail has no banned-constructs violations";
  EXPECT_EQ(error, "");
}

// ------------------------------------------------------------- the lexer --

TEST(Lexer, TracksLinesStringsAndDirectives) {
  const std::vector<Token> toks = LexCpp(
      "#include <mutex>\n"
      "// a comment\n"
      "const char* s = \"relcomp_x\";\n");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, Token::Kind::kDirective);
  EXPECT_EQ(toks[0].text, "#include");
  EXPECT_EQ(toks[1].kind, Token::Kind::kComment);
  EXPECT_EQ(toks[1].line, 2);
  const Token& str = toks[toks.size() - 2];  // last token is the ';'
  EXPECT_EQ(str.kind, Token::Kind::kString);
  EXPECT_EQ(str.text, "relcomp_x");
  EXPECT_EQ(str.line, 3);
}

TEST(Lexer, FusesScopeResolutionAndHandlesRawStrings) {
  const std::vector<Token> toks = LexCpp("std::mutex m; auto r = R\"(a\"b)\";");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_TRUE(toks[1].IsPunct("::"));
  bool raw_seen = false;
  for (const Token& t : toks) {
    raw_seen = raw_seen || (t.kind == Token::Kind::kString && t.text == "a\"b");
  }
  EXPECT_TRUE(raw_seen);
}

}  // namespace
}  // namespace lint
}  // namespace relcomp
