// Unit tests for the data model: values, domains, schemas, relations,
// instances.
#include <gtest/gtest.h>

#include "data/instance.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_sym());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, SymRoundTrip) {
  Value v = Value::Sym("Edinburgh");
  EXPECT_TRUE(v.is_sym());
  EXPECT_EQ(v.sym_name(), "Edinburgh");
  EXPECT_EQ(v.ToString(), "Edinburgh");
}

TEST(ValueTest, InterningGivesEquality) {
  EXPECT_EQ(Value::Sym("abc"), Value::Sym("abc"));
  EXPECT_NE(Value::Sym("abc"), Value::Sym("abd"));
}

TEST(ValueTest, IntsAndSymsDiffer) {
  EXPECT_NE(Value::Int(0), Value::Sym("0"));
}

TEST(ValueTest, TotalOrderIsStrict) {
  std::vector<Value> vals = {I(3), S("b"), I(1), S("a"), I(2)};
  std::sort(vals.begin(), vals.end());
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_TRUE(vals[i - 1] < vals[i] || vals[i - 1] == vals[i]);
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Sym("x").Hash(), Value::Sym("x").Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
}

TEST(DomainTest, InfiniteContainsEverything) {
  Domain d = Domain::Infinite();
  EXPECT_FALSE(d.is_finite());
  EXPECT_TRUE(d.Contains(I(123)));
  EXPECT_TRUE(d.Contains(S("anything")));
}

TEST(DomainTest, FiniteMembership) {
  Domain d = Domain::Finite({I(0), I(1)});
  EXPECT_TRUE(d.is_finite());
  EXPECT_TRUE(d.Contains(I(0)));
  EXPECT_FALSE(d.Contains(I(2)));
  EXPECT_EQ(d.values().size(), 2u);
}

TEST(DomainTest, FiniteDeduplicatesAndSorts) {
  Domain d = Domain::Finite({I(3), I(1), I(3), I(2)});
  ASSERT_EQ(d.values().size(), 3u);
  EXPECT_EQ(d.values()[0], I(1));
  EXPECT_EQ(d.values()[2], I(3));
}

TEST(DomainTest, BooleanAndIntRange) {
  EXPECT_EQ(Domain::Boolean().values().size(), 2u);
  Domain r = Domain::IntRange(5, 8);
  EXPECT_EQ(r.values().size(), 4u);
  EXPECT_TRUE(r.Contains(I(6)));
  EXPECT_FALSE(r.Contains(I(9)));
}

TEST(SchemaTest, AttributeIndexLookup) {
  RelationSchema rel("R", {Attribute{"a"}, Attribute{"b"}, Attribute{"c"}});
  EXPECT_EQ(rel.AttributeIndex("b"), 1);
  EXPECT_EQ(rel.AttributeIndex("zz"), -1);
  EXPECT_EQ(rel.arity(), 3u);
}

TEST(SchemaTest, AnonymousSchema) {
  RelationSchema rel = RelationSchema::Anonymous("out", 4);
  EXPECT_EQ(rel.arity(), 4u);
  EXPECT_EQ(rel.attribute(2).name, "a2");
}

TEST(SchemaTest, DatabaseSchemaFindAndReplace) {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema("R", {Attribute{"a"}}));
  schema.AddRelation(RelationSchema("S", {Attribute{"x"}, Attribute{"y"}}));
  EXPECT_TRUE(schema.Contains("R"));
  EXPECT_FALSE(schema.Contains("T"));
  EXPECT_EQ(schema.Find("S")->arity(), 2u);
  // Replacement keeps a single entry.
  schema.AddRelation(RelationSchema("R", {Attribute{"a"}, Attribute{"b"}}));
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.Find("R")->arity(), 2u);
}

TEST(SchemaTest, GetReportsMissing) {
  DatabaseSchema schema;
  Result<RelationSchema> r = schema.Get("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(RelationSchema::Anonymous("R", 2));
  EXPECT_TRUE(r.Insert({I(1), I(2)}));
  EXPECT_FALSE(r.Insert({I(1), I(2)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, RowsStaySorted) {
  Relation r(RelationSchema::Anonymous("R", 1));
  r.Insert({I(3)});
  r.Insert({I(1)});
  r.Insert({I(2)});
  EXPECT_EQ(r.rows()[0][0], I(1));
  EXPECT_EQ(r.rows()[2][0], I(3));
}

TEST(RelationTest, ContainsAndErase) {
  Relation r(RelationSchema::Anonymous("R", 1));
  r.Insert({I(5)});
  EXPECT_TRUE(r.Contains({I(5)}));
  EXPECT_TRUE(r.Erase({I(5)}));
  EXPECT_FALSE(r.Contains({I(5)}));
  EXPECT_FALSE(r.Erase({I(5)}));
}

TEST(RelationTest, SubsetTests) {
  Relation a(RelationSchema::Anonymous("R", 1));
  Relation b(RelationSchema::Anonymous("R", 1));
  a.Insert({I(1)});
  b.Insert({I(1)});
  b.Insert({I(2)});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
}

TEST(RelationTest, SetAlgebra) {
  Relation a(RelationSchema::Anonymous("R", 1));
  Relation b(RelationSchema::Anonymous("R", 1));
  for (int i = 0; i < 4; ++i) a.Insert({I(i)});
  for (int i = 2; i < 6; ++i) b.Insert({I(i)});
  EXPECT_EQ(a.Intersect(b).size(), 2u);
  EXPECT_EQ(a.Union(b).size(), 6u);
  EXPECT_EQ(a.Difference(b).size(), 2u);
  EXPECT_TRUE(a.Difference(a).empty());
}

TEST(RelationTest, Projection) {
  Relation r(RelationSchema::Anonymous("R", 3));
  r.Insert({I(1), I(2), I(3)});
  r.Insert({I(1), I(5), I(3)});
  Relation p = r.Project({0, 2});
  EXPECT_EQ(p.size(), 1u);  // duplicates collapse
  EXPECT_TRUE(p.Contains({I(1), I(3)}));
}

TEST(InstanceTest, ConstructionCreatesEmptyRelations) {
  Instance db(testing::EdgeSchema());
  EXPECT_EQ(db.TotalTuples(), 0u);
  EXPECT_TRUE(db.Empty());
  EXPECT_EQ(db.at("E").size(), 0u);
}

TEST(InstanceTest, AddRemoveTuples) {
  Instance db(testing::EdgeSchema());
  EXPECT_TRUE(db.AddTuple("E", {I(1), I(2)}));
  EXPECT_FALSE(db.AddTuple("E", {I(1), I(2)}));
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_TRUE(db.RemoveTuple("E", {I(1), I(2)}));
  EXPECT_TRUE(db.Empty());
}

TEST(InstanceTest, ProperSubset) {
  Instance a(testing::EdgeSchema());
  Instance b(testing::EdgeSchema());
  a.AddTuple("E", {I(1), I(2)});
  b.AddTuple("E", {I(1), I(2)});
  b.AddTuple("E", {I(2), I(3)});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(b.IsProperSubsetOf(a));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
}

TEST(InstanceTest, UnionMerges) {
  Instance a(testing::EdgeSchema());
  Instance b(testing::EdgeSchema());
  a.AddTuple("E", {I(1), I(2)});
  b.AddTuple("E", {I(2), I(3)});
  Instance u = a.Union(b);
  EXPECT_EQ(u.TotalTuples(), 2u);
}

TEST(InstanceTest, ActiveDomainCollectsAllValues) {
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), S("x")});
  db.AddTuple("E", {I(1), S("y")});
  std::vector<Value> adom = db.ActiveDomain();
  EXPECT_EQ(adom.size(), 3u);
}

TEST(InstanceTest, EqualityIsTupleSetEquality) {
  Instance a(testing::EdgeSchema());
  Instance b(testing::EdgeSchema());
  a.AddTuple("E", {I(1), I(2)});
  b.AddTuple("E", {I(1), I(2)});
  EXPECT_EQ(a, b);
  b.AddTuple("E", {I(9), I(9)});
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace relcomp
