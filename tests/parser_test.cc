// Tests for the textual schema / query / CC language.
#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;

TEST(ParserTest, SchemaWithDomains) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema Person(name: sym, age: int, sex: {"M", "F"}).
  )"));
  const RelationSchema* person = p.schema.Find("Person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->arity(), 3u);
  EXPECT_FALSE(person->attribute(0).domain.is_finite());
  EXPECT_TRUE(person->attribute(2).domain.is_finite());
  EXPECT_EQ(person->attribute(2).domain.values().size(), 2u);
}

TEST(ParserTest, InstanceBlock) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    instance db {
      E(1, 2).
      E(2, 3).
    }
  )"));
  ASSERT_EQ(p.instances.count("db"), 1u);
  EXPECT_EQ(p.instances.at("db").at("E").size(), 2u);
  EXPECT_TRUE(p.instances.at("db").at("E").Contains({I(1), I(2)}));
}

TEST(ParserTest, CqQueryWithBuiltins) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    instance db { E(1, 2). E(2, 2). }
    query Loop(x) :- E(x, y), x = y.
  )"));
  ASSERT_EQ(p.queries.count("Loop"), 1u);
  const Query& q = p.queries.at("Loop");
  EXPECT_EQ(q.language(), QueryLanguage::kCQ);
  ASSERT_OK_AND_ASSIGN(out, q.Eval(p.instances.at("db")));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(2)}));
}

TEST(ParserTest, RepeatedQueryNameBuildsUcq) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    query Q(x) :- E(x, y).
    query Q(x) :- E(y, x).
  )"));
  EXPECT_EQ(p.queries.at("Q").language(), QueryLanguage::kUCQ);
  EXPECT_EQ(p.queries.at("Q").ucq().disjuncts().size(), 2u);
}

TEST(ParserTest, StringConstantsAndComments) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    # patients schema
    schema V(nhs: sym, city: sym).
    instance db { V("915", "EDI"). }
    query Q(n) :- V(n, c), c = "EDI".  # Edinburgh only
  )"));
  ASSERT_OK_AND_ASSIGN(out, p.queries.at("Q").Eval(p.instances.at("db")));
  EXPECT_TRUE(out.Contains({S("915")}));
}

TEST(ParserTest, ContainmentConstraint) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema V(nhs: sym, city: sym).
    master Pm(nhs: sym, zip: sym).
    minstance dm { Pm("915", "EH1"). }
    cc C1(n) :- V(n, c), c = "EDI" <= Pm[nhs].
  )"));
  ASSERT_EQ(p.ccs.size(), 1u);
  Instance db(p.schema);
  db.AddTuple("V", {S("915"), S("EDI")});
  ASSERT_OK_AND_ASSIGN(sat,
                       p.ccs[0].Satisfied(db, p.minstances.at("dm")));
  EXPECT_TRUE(sat);
  db.AddTuple("V", {S("999"), S("EDI")});
  ASSERT_OK_AND_ASSIGN(sat2,
                       p.ccs[0].Satisfied(db, p.minstances.at("dm")));
  EXPECT_FALSE(sat2);
}

TEST(ParserTest, CcMasterColumnsByIndex) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema V(nhs: sym, city: sym).
    master Pm(nhs: sym, zip: sym).
    cc C1(n) :- V(n, c) <= Pm[0].
  )"));
  EXPECT_EQ(p.ccs[0].master_cols(), (std::vector<int>{0}));
}

TEST(ParserTest, FoQueryWithQuantifiers) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    instance db { E(1, 2). E(2, 3). }
    fo Sink(x) := (exists y (E(y, x))) & !(exists z (E(x, z))).
  )"));
  const Query& q = p.queries.at("Sink");
  EXPECT_EQ(q.language(), QueryLanguage::kFO);
  ASSERT_OK_AND_ASSIGN(out, q.Eval(p.instances.at("db")));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({I(3)}));
}

TEST(ParserTest, PositiveFoClassifiedAsEfoPlus) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    fo Q(x) := exists y (E(x, y) | E(y, x)).
  )"));
  EXPECT_EQ(p.queries.at("Q").language(), QueryLanguage::kEFOPlus);
}

TEST(ParserTest, FpProgram) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int, b: int).
    instance db { E(1, 2). E(2, 3). E(3, 4). }
    fp TC {
      T(x, y) :- E(x, y).
      T(x, z) :- T(x, y), E(y, z).
      output T.
    }
  )"));
  const Query& q = p.queries.at("TC");
  EXPECT_EQ(q.language(), QueryLanguage::kFP);
  ASSERT_OK_AND_ASSIGN(out, q.Eval(p.instances.at("db")));
  EXPECT_EQ(out.size(), 6u);
}

TEST(ParserTest, ErrorsCarryLocation) {
  Result<ParsedProgram> r = ParseProgram("schema E(a int).");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, UnterminatedStringRejected) {
  Result<ParsedProgram> r = ParseProgram("schema E(a: sym). instance d { E(\"x). }");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, UnknownRelationInInstanceRejected) {
  Result<ParsedProgram> r = ParseProgram(R"(
    schema E(a: int).
    instance db { F(1). }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ArityMismatchInInstanceRejected) {
  Result<ParsedProgram> r = ParseProgram(R"(
    schema E(a: int, b: int).
    instance db { E(1). }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, NegativeNumbers) {
  ASSERT_OK_AND_ASSIGN(p, ParseProgram(R"(
    schema E(a: int).
    instance db { E(-5). }
  )"));
  EXPECT_TRUE(p.instances.at("db").at("E").Contains({I(-5)}));
}

}  // namespace
}  // namespace relcomp
