// Shared helpers for the relcomp test suite.
#ifndef RELCOMP_TESTS_TEST_UTIL_H_
#define RELCOMP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "data/instance.h"
#include "query/query.h"

namespace relcomp {
namespace testing {

inline Value I(int64_t v) { return Value::Int(v); }
inline Value S(const char* s) { return Value::Sym(s); }
inline VarId V(int32_t id) { return VarId{id}; }

/// Schema with one relation "E(a, b)" over infinite domains.
inline DatabaseSchema EdgeSchema() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "E", {Attribute{"a", Domain::Infinite()},
            Attribute{"b", Domain::Infinite()}}));
  return schema;
}

/// A setting with no master data and no CCs over `schema`.
inline PartiallyClosedSetting OpenSetting(DatabaseSchema schema) {
  PartiallyClosedSetting setting;
  setting.schema = std::move(schema);
  setting.dm = Instance(setting.master_schema);
  return setting;
}

/// Unwraps a Result<T> in a test, failing loudly on error.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto lhs##_result = (expr);                                 \
  ASSERT_TRUE(lhs##_result.ok()) << lhs##_result.status().ToString(); \
  auto lhs = std::move(lhs##_result).value()

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    auto _st = (expr);                                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

}  // namespace testing
}  // namespace relcomp

#endif  // RELCOMP_TESTS_TEST_UTIL_H_
