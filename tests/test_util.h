// Shared helpers for the relcomp test suite.
#ifndef RELCOMP_TESTS_TEST_UTIL_H_
#define RELCOMP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "ctable/cinstance.h"
#include "data/instance.h"
#include "query/query.h"
#include "service/decision.h"

namespace relcomp {
namespace testing {

inline Value I(int64_t v) { return Value::Int(v); }
inline Value S(const char* s) { return Value::Sym(s); }
inline VarId V(int32_t id) { return VarId{id}; }

/// Schema with one relation "E(a, b)" over infinite domains.
inline DatabaseSchema EdgeSchema() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "E", {Attribute{"a", Domain::Infinite()},
            Attribute{"b", Domain::Infinite()}}));
  return schema;
}

/// A setting with no master data and no CCs over `schema`.
inline PartiallyClosedSetting OpenSetting(DatabaseSchema schema) {
  PartiallyClosedSetting setting;
  setting.schema = std::move(schema);
  setting.dm = Instance(setting.master_schema);
  return setting;
}

/// A narrow MDM-audit fixture shared by the engine and service tests:
/// IND-bounded visits over a 4-patient master, where every problem kind —
/// including RCQP strong and the weak models — is cheap. `city_offset`
/// varies the finite city domain so two fixtures give
/// fingerprint-distinct settings.
struct AuditFixture {
  PartiallyClosedSetting setting;
  CInstance audited;
  Query by_patient;  ///< cities visited by patient "nhs-0"
  Query all_cities;  ///< cities of any visit
};

inline AuditFixture MakeAuditFixture(int city_offset = 0) {
  AuditFixture fx;
  const Value city_a = city_offset == 0 ? S("EDI") : S("GLA");
  const Value city_b = city_offset == 0 ? S("LON") : S("ABD");
  fx.setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({city_a, city_b})}}));
  fx.setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  fx.setting.dm = Instance(fx.setting.master_schema);
  for (int i = 0; i < 4; ++i) {
    fx.setting.dm.AddTuple("Patientm",
                           {Value::Sym("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}}}});
  fx.setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                              std::vector<int>{0});

  Instance db(fx.setting.schema);
  db.AddTuple("Visit", {S("nhs-0"), city_a});
  db.AddTuple("Visit", {S("nhs-1"), city_b});
  fx.audited = CInstance::FromInstance(db);

  fx.by_patient = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{0})}, {RelAtom{"Visit", {CTerm(S("nhs-0")), VarId{0}}}}));
  fx.all_cities = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{1})}, {RelAtom{"Visit", {VarId{0}, VarId{1}}}}));
  return fx;
}

/// A deliberately expensive decision: the audited c-instance carries `vars`
/// distinct variables in an infinite-domain column plus one ground "ghost"
/// row that violates the IND CC in every world, so Mod(T, Dm, V) is empty
/// but proving it exhausts the FULL |Adom|^vars valuation space (no early
/// exit) — |Adom| ≈ master_rows + a handful. The canonical use: a search
/// that runs long enough (or forever, up to the step budget) for a
/// mid-run deadline/cancellation checkpoint to fire, with per-step cost
/// dominated by Apply + CC checks.
struct SlowFixture {
  PartiallyClosedSetting setting;
  CInstance audited;
  Query query;

  DecisionRequest Request(ProblemKind kind = ProblemKind::kRcdpStrong) const {
    DecisionRequest request;
    request.kind = kind;
    request.query = query;
    request.cinstance = audited;
    return request;
  }
};

inline SlowFixture MakeSlowFixture(int master_rows, int vars) {
  SlowFixture fx;
  fx.setting.schema.AddRelation(RelationSchema(
      "Visit", {Attribute{"nhs", Domain::Infinite()},
                Attribute{"city", Domain::Finite({S("EDI"), S("LON")})}}));
  fx.setting.master_schema.AddRelation(
      RelationSchema("Patientm", {Attribute{"nhs", Domain::Infinite()}}));
  fx.setting.dm = Instance(fx.setting.master_schema);
  for (int i = 0; i < master_rows; ++i) {
    fx.setting.dm.AddTuple("Patientm",
                           {Value::Sym("nhs-" + std::to_string(i))});
  }
  ConjunctiveQuery proj({CTerm(VarId{0})},
                        {RelAtom{"Visit", {VarId{0}, VarId{1}}}});
  fx.setting.ccs.emplace_back("visits_known", std::move(proj), "Patientm",
                              std::vector<int>{0});

  fx.audited = CInstance(fx.setting.schema);
  CTable& visits = fx.audited.at("Visit");
  visits.AddRow({Cell(S("ghost")), Cell(S("EDI"))});  // never in Patientm
  for (int v = 0; v < vars; ++v) {
    visits.AddRow({Cell(VarId{v}), Cell(S("EDI"))});
  }

  // Query variables keep small ids: the fresh-constant budget scales with
  // the variable universe (max id + 1), and a large id would inflate Adom
  // far beyond master_rows.
  fx.query = Query::Cq(ConjunctiveQuery(
      {CTerm(VarId{20})}, {RelAtom{"Visit", {VarId{21}, VarId{20}}}}));
  return fx;
}

/// Unwraps a Result<T> in a test, failing loudly on error.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto lhs##_result = (expr);                                 \
  ASSERT_TRUE(lhs##_result.ok()) << lhs##_result.status().ToString(); \
  auto lhs = std::move(lhs##_result).value()

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    auto _st = (expr);                                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

}  // namespace testing
}  // namespace relcomp

#endif  // RELCOMP_TESTS_TEST_UTIL_H_
