// Tests for the Lemma 3.2 single-relation collapse: query answers and CC
// satisfaction are preserved through (fD, fQ, fC).
#include <gtest/gtest.h>

#include "query/lemma32.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

struct TwoRelFixture {
  DatabaseSchema schema;
  Instance db;

  TwoRelFixture() {
    schema.AddRelation(RelationSchema("A", {Attribute{"x"}}));
    schema.AddRelation(RelationSchema("E", {Attribute{"a"}, Attribute{"b"}}));
    db = Instance(schema);
    db.AddTuple("A", {I(1)});
    db.AddTuple("A", {I(2)});
    db.AddTuple("E", {I(1), I(2)});
    db.AddTuple("E", {I(2), I(3)});
  }
};

TEST(Lemma32Test, InstanceMapTagsAndPads) {
  TwoRelFixture fx;
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  ASSERT_OK_AND_ASSIGN(mapped, collapse.MapInstance(fx.db));
  EXPECT_EQ(mapped.TotalTuples(), 4u);
  // A-tuples carry tag 0 and one pad; E-tuples carry tag 1.
  EXPECT_TRUE(mapped.at("U").Contains({I(0), I(1), collapse.pad()}));
  EXPECT_TRUE(mapped.at("U").Contains({I(1), I(1), I(2)}));
}

TEST(Lemma32Test, CqAnswersPreserved) {
  TwoRelFixture fx;
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  // Q(x, y) :- A(x), E(x, y).
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(0)), CTerm(V(1))},
      {RelAtom{"A", {V(0)}}, RelAtom{"E", {V(0), V(1)}}}));
  ASSERT_OK_AND_ASSIGN(mapped_q, collapse.MapQuery(q));
  ASSERT_OK_AND_ASSIGN(mapped_db, collapse.MapInstance(fx.db));
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(fx.db));
  ASSERT_OK_AND_ASSIGN(via_collapse, mapped_q.Eval(mapped_db));
  EXPECT_EQ(direct, via_collapse);
  EXPECT_EQ(direct.size(), 2u);
}

TEST(Lemma32Test, UcqAnswersPreserved) {
  TwoRelFixture fx;
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  UnionQuery ucq;
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"A", {V(0)}}}));
  ucq.AddDisjunct(ConjunctiveQuery({CTerm(V(1))},
                                   {RelAtom{"E", {V(0), V(1)}}}));
  Query q = Query::Ucq(ucq);
  ASSERT_OK_AND_ASSIGN(mapped_q, collapse.MapQuery(q));
  ASSERT_OK_AND_ASSIGN(mapped_db, collapse.MapInstance(fx.db));
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(fx.db));
  ASSERT_OK_AND_ASSIGN(via_collapse, mapped_q.Eval(mapped_db));
  EXPECT_EQ(direct, via_collapse);
}

TEST(Lemma32Test, FpAnswersPreserved) {
  TwoRelFixture fx;
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  FpProgram tc;
  tc.AddRule(FpRule{{"T", {V(0), V(1)}}, {{"E", {V(0), V(1)}}}, {}});
  tc.AddRule(FpRule{{"T", {V(0), V(2)}},
                    {{"T", {V(0), V(1)}}, {"E", {V(1), V(2)}}},
                    {}});
  tc.set_output("T");
  Query q = Query::Fp(tc);
  ASSERT_OK_AND_ASSIGN(mapped_q, collapse.MapQuery(q));
  ASSERT_OK_AND_ASSIGN(mapped_db, collapse.MapInstance(fx.db));
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(fx.db));
  ASSERT_OK_AND_ASSIGN(via_collapse, mapped_q.Eval(mapped_db));
  EXPECT_EQ(direct, via_collapse);
  EXPECT_EQ(direct.size(), 3u);  // (1,2), (2,3), (1,3)
}

TEST(Lemma32Test, CcSatisfactionPreserved) {
  TwoRelFixture fx;
  DatabaseSchema master_schema;
  master_schema.AddRelation(RelationSchema("Am", {Attribute{"x"}}));
  Instance dm(master_schema);
  dm.AddTuple("Am", {I(1)});
  dm.AddTuple("Am", {I(2)});
  CCSet ccs;
  ccs.emplace_back(
      "bound", ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"A", {V(0)}}}), "Am",
      std::vector<int>{0});

  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  ASSERT_OK_AND_ASSIGN(mapped_ccs, collapse.MapCcs(ccs));
  ASSERT_OK_AND_ASSIGN(mapped_db, collapse.MapInstance(fx.db));
  ASSERT_OK_AND_ASSIGN(direct_sat, SatisfiesCCs(fx.db, dm, ccs));
  ASSERT_OK_AND_ASSIGN(mapped_sat, SatisfiesCCs(mapped_db, dm, mapped_ccs));
  EXPECT_EQ(direct_sat, mapped_sat);
  EXPECT_TRUE(direct_sat);

  // Break the CC and check both sides agree again.
  fx.db.AddTuple("A", {I(99)});
  ASSERT_OK_AND_ASSIGN(mapped_db2, collapse.MapInstance(fx.db));
  ASSERT_OK_AND_ASSIGN(direct_sat2, SatisfiesCCs(fx.db, dm, ccs));
  ASSERT_OK_AND_ASSIGN(mapped_sat2, SatisfiesCCs(mapped_db2, dm, mapped_ccs));
  EXPECT_EQ(direct_sat2, mapped_sat2);
  EXPECT_FALSE(direct_sat2);
}

TEST(Lemma32Test, TagAttributeHasFiniteDomain) {
  TwoRelFixture fx;
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  const RelationSchema* u = collapse.collapsed_schema().Find("U");
  ASSERT_NE(u, nullptr);
  EXPECT_TRUE(u->attribute(0).domain.is_finite());
  EXPECT_EQ(u->attribute(0).domain.values().size(), 2u);
}

TEST(Lemma32Test, EmptySchemaRejected) {
  DatabaseSchema empty;
  EXPECT_FALSE(SingleRelationCollapse::Create(empty, "U").ok());
}

class Lemma32RandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma32RandomSweep, RandomCqPreserved) {
  uint64_t seed = GetParam();
  auto next = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 31);
  };
  TwoRelFixture fx;
  // Randomize the instance.
  Instance db(fx.schema);
  for (int i = 0; i < 5; ++i) {
    db.AddTuple("A", {I(static_cast<int64_t>(next() % 4))});
    db.AddTuple("E", {I(static_cast<int64_t>(next() % 4)),
                      I(static_cast<int64_t>(next() % 4))});
  }
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(1))}, {RelAtom{"A", {V(0)}}, RelAtom{"E", {V(0), V(1)}}},
      {CondAtom{V(0), true, V(1)}}));
  ASSERT_OK_AND_ASSIGN(collapse,
                       SingleRelationCollapse::Create(fx.schema, "U"));
  ASSERT_OK_AND_ASSIGN(mapped_q, collapse.MapQuery(q));
  ASSERT_OK_AND_ASSIGN(mapped_db, collapse.MapInstance(db));
  ASSERT_OK_AND_ASSIGN(direct, q.Eval(db));
  ASSERT_OK_AND_ASSIGN(via_collapse, mapped_q.Eval(mapped_db));
  EXPECT_EQ(direct, via_collapse);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma32RandomSweep,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace relcomp
