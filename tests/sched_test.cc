// Scheduler subsystem invariants, at two levels.
//
// FairQueue unit tests pin the deterministic core: strict arrival order
// under kFifo, stride interleaving proportional to tenant weights under
// kFairShare (starvation-freedom), priority lanes, quota / rate admission
// control under both overload policies, and deadline shedding at pop.
//
// Service-level tests drive the scheduler through CompletenessService with
// a plugged single-worker pool so queue contents are fully controlled:
// fair-share completes a cheap tenant interleaved with (FIFO: strictly
// after) an expensive tenant's backlog, best-effort deadlines shed queued
// requests before evaluation, a coalesced flight group is cancelled only
// when ALL waiters cancel, admission control rejects over-quota requests
// with kUnavailable decisions, and SubmitStream delivers decisions
// identical to SubmitBatch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sched/cancel.h"
#include "sched/policy.h"
#include "sched/queue.h"
#include "sched/stream.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::AuditFixture;
using testing::MakeAuditFixture;

// ---------------------------------------------------------------------------
// FairQueue unit tests
// ---------------------------------------------------------------------------

sched::Task MakeTask(uint64_t tenant, std::vector<uint64_t>* order,
                     sched::Priority priority = sched::Priority::kNormal) {
  sched::Task task;
  task.tenant = tenant;
  task.priority = priority;
  task.fn = [tenant, order](sched::TaskOutcome, std::chrono::microseconds) {
    order->push_back(tenant);
  };
  return task;
}

TEST(FairQueueTest, FifoPreservesArrivalOrderAcrossTenants) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kBlock);
  std::vector<uint64_t> order;
  for (uint64_t tenant : {1u, 2u, 1u, 3u, 2u, 1u}) {
    ASSERT_TRUE(queue.Push(MakeTask(tenant, &order)));
  }
  EXPECT_EQ(queue.depth(), 6u);
  queue.Shutdown();
  sched::Task task;
  sched::TaskOutcome outcome;
  while (queue.Pop(&task, &outcome)) task.fn(outcome, task.wait);
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 1, 3, 2, 1}));
}

TEST(FairQueueTest, PriorityLanesOvertakeWithinPolicy) {
  for (sched::SchedPolicy policy :
       {sched::SchedPolicy::kFifo, sched::SchedPolicy::kFairShare}) {
    sched::FairQueue queue(policy, sched::OverloadPolicy::kBlock);
    std::vector<uint64_t> order;
    // Encode the priority in the "tenant" recorded: one tenant, three
    // priorities, pushed low → normal → high.
    sched::Task low = MakeTask(3, &order, sched::Priority::kLow);
    sched::Task normal = MakeTask(2, &order, sched::Priority::kNormal);
    sched::Task high = MakeTask(1, &order, sched::Priority::kHigh);
    // All belong to tenant 7 so fair-share has a single lane to order.
    low.tenant = normal.tenant = high.tenant = 7;
    low.fn = [&order](sched::TaskOutcome, std::chrono::microseconds) {
      order.push_back(3);
    };
    normal.fn = [&order](sched::TaskOutcome, std::chrono::microseconds) {
      order.push_back(2);
    };
    high.fn = [&order](sched::TaskOutcome, std::chrono::microseconds) {
      order.push_back(1);
    };
    ASSERT_TRUE(queue.Push(std::move(low)));
    ASSERT_TRUE(queue.Push(std::move(normal)));
    ASSERT_TRUE(queue.Push(std::move(high)));
    queue.Shutdown();
    sched::Task task;
    sched::TaskOutcome outcome;
    while (queue.Pop(&task, &outcome)) task.fn(outcome, task.wait);
    EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3}))
        << "policy=" << static_cast<int>(policy);
  }
}

TEST(FairQueueTest, StrideSchedulingInterleavesByWeightWithoutStarvation) {
  // Tenant 1 has weight 4, tenant 2 weight 1: with both backlogged, tenant
  // 1 receives ~4x the dispatches, and tenant 2 is never starved.
  sched::FairQueue queue(sched::SchedPolicy::kFairShare,
                         sched::OverloadPolicy::kBlock);
  queue.RegisterTenant(1, sched::TenantOptions{/*weight=*/4});
  queue.RegisterTenant(2, sched::TenantOptions{/*weight=*/1});
  std::vector<uint64_t> order;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue.Push(MakeTask(1, &order)));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue.Push(MakeTask(2, &order)));
  EXPECT_EQ(queue.TenantDepth(1), 8u);
  EXPECT_EQ(queue.TenantDepth(2), 8u);
  queue.Shutdown();
  sched::Task task;
  sched::TaskOutcome outcome;
  while (queue.Pop(&task, &outcome)) task.fn(outcome, task.wait);

  ASSERT_EQ(order.size(), 16u);
  // Ratio bound: the 4:1 weights give the heavy-weight tenant at least 7
  // of the first 10 dispatches, while the weight-1 tenant still makes
  // progress (at least one dispatch in every 6-task window until drained).
  size_t heavy_in_first_10 = 0;
  for (size_t i = 0; i < 10; ++i) heavy_in_first_10 += order[i] == 1;
  EXPECT_GE(heavy_in_first_10, 7u);
  EXPECT_LE(heavy_in_first_10, 9u);  // starvation-freedom: tenant 2 appears
  size_t first_light = 0;
  while (order[first_light] != 2) ++first_light;
  EXPECT_LE(first_light, 4u) << "weight-1 tenant starved at the head";
  // Both tenants complete; the weight-4 tenant drains first.
  size_t last_heavy = 0, last_light = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    (order[i] == 1 ? last_heavy : last_light) = i;
  }
  EXPECT_LT(last_heavy, last_light);
}

TEST(FairQueueTest, QuotaRejectsWhenOverloadPolicyIsReject) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kReject);
  queue.RegisterTenant(1, sched::TenantOptions{/*weight=*/1, /*max_queue=*/2});
  std::vector<uint64_t> order;
  EXPECT_TRUE(queue.Push(MakeTask(1, &order)));
  EXPECT_TRUE(queue.Push(MakeTask(1, &order)));
  sched::Task rejected = MakeTask(1, &order);
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  ASSERT_NE(rejected.fn, nullptr) << "failed Push must not consume the task";
  // Another tenant is unaffected by tenant 1's quota.
  EXPECT_TRUE(queue.Push(MakeTask(2, &order)));
}

TEST(FairQueueTest, QuotaBlocksProducerUntilSpaceFrees) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kBlock);
  queue.RegisterTenant(1, sched::TenantOptions{/*weight=*/1, /*max_queue=*/1});
  std::vector<uint64_t> order;
  ASSERT_TRUE(queue.Push(MakeTask(1, &order)));
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    sched::Task task = MakeTask(1, &order);
    ASSERT_TRUE(queue.Push(std::move(task)));  // blocks until a pop
    admitted = true;
  });
  // The producer must be blocked: give it a moment, then free a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  sched::Task task;
  sched::TaskOutcome outcome;
  ASSERT_TRUE(queue.Pop(&task, &outcome));
  task.fn(outcome, task.wait);
  producer.join();
  EXPECT_TRUE(admitted.load());
}

TEST(FairQueueTest, RateLimitRejectsBurstBeyondBucket) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kReject);
  // 1 request/second, burst 2: two immediate pushes pass, the third fails.
  queue.RegisterTenant(
      1, sched::TenantOptions{/*weight=*/1, /*max_queue=*/0,
                              /*rate_per_sec=*/1.0, /*burst=*/2.0});
  std::vector<uint64_t> order;
  EXPECT_TRUE(queue.Push(MakeTask(1, &order)));
  EXPECT_TRUE(queue.Push(MakeTask(1, &order)));
  EXPECT_FALSE(queue.Push(MakeTask(1, &order)));
}

TEST(FairQueueTest, ExpiredDeadlineShedsAtPop) {
  sched::FairQueue queue(sched::SchedPolicy::kFairShare,
                         sched::OverloadPolicy::kBlock);
  std::vector<uint64_t> order;
  sched::Task stale = MakeTask(1, &order);
  stale.deadline = sched::Clock::now() - std::chrono::milliseconds(1);
  sched::Task fresh = MakeTask(2, &order);
  ASSERT_TRUE(queue.Push(std::move(stale)));
  ASSERT_TRUE(queue.Push(std::move(fresh)));
  queue.Shutdown();
  sched::Task task;
  sched::TaskOutcome outcome;
  ASSERT_TRUE(queue.Pop(&task, &outcome));
  EXPECT_EQ(outcome, sched::TaskOutcome::kExpired);
  EXPECT_EQ(task.tenant, 1u);
  ASSERT_TRUE(queue.Pop(&task, &outcome));
  EXPECT_EQ(outcome, sched::TaskOutcome::kRun);
  EXPECT_EQ(task.tenant, 2u);
  EXPECT_FALSE(queue.Pop(&task, &outcome));
}

TEST(CancelTokenTest, AnyOfFiresWhenEitherOperandCancels) {
  sched::CancelSource a, b;
  sched::CancelToken any = sched::CancelToken::AnyOf(a.token(), b.token());
  EXPECT_TRUE(any.valid());
  EXPECT_FALSE(any.cancelled());
  b.Cancel();
  EXPECT_TRUE(any.cancelled());

  // Degenerate shapes: one invalid operand yields the other; two invalid
  // operands yield an invalid (never-cancelling) token.
  sched::CancelSource c;
  sched::CancelToken only =
      sched::CancelToken::AnyOf(sched::CancelToken{}, c.token());
  EXPECT_FALSE(only.cancelled());
  c.Cancel();
  EXPECT_TRUE(only.cancelled());
  EXPECT_FALSE(
      sched::CancelToken::AnyOf(sched::CancelToken{}, sched::CancelToken{})
          .valid());
}

TEST(CancelGroupTest, JointTokenFiresOnlyWhenEveryMemberCancels) {
  sched::CancelGroup group;
  sched::CancelToken joint = group.token();
  EXPECT_FALSE(joint.cancelled()) << "an empty group must not be cancelled";

  sched::CancelSource a, b;
  group.Add(a.token());
  group.Add(b.token());
  a.Cancel();
  EXPECT_FALSE(joint.cancelled()) << "one live member must pin the group";
  b.Cancel();
  EXPECT_TRUE(joint.cancelled());
}

TEST(CancelGroupTest, InvalidMemberPinsTheGroupForever) {
  sched::CancelGroup group;
  sched::CancelSource a;
  group.Add(a.token());
  group.Add(sched::CancelToken{});  // a participant that can never cancel
  a.Cancel();
  EXPECT_FALSE(group.cancelled());
  // Even members added later cannot un-pin it.
  sched::CancelSource b;
  b.Cancel();
  group.Add(b.token());
  EXPECT_FALSE(group.token().cancelled());
}

TEST(CancelGroupTest, LateJoinerRevivesAnAllCancelledGroup) {
  sched::CancelGroup group;
  sched::CancelSource a;
  group.Add(a.token());
  a.Cancel();
  EXPECT_TRUE(group.cancelled());
  // A live joiner arriving before the computation observed the joint
  // cancellation keeps it alive again.
  sched::CancelSource b;
  group.Add(b.token());
  EXPECT_FALSE(group.cancelled());
  b.Cancel();
  EXPECT_TRUE(group.cancelled());
}

TEST(FairQueueTest, ManyTenantHeapKeepsDeterministicTieBreakOrder) {
  // 64 tenants, equal weights, one task each pushed in DESCENDING id
  // order: every pass is equal, so the pass-ordered dispatch index must
  // resolve ties by lowest tenant id — ascending pops, independent of
  // arrival order.
  sched::FairQueue queue(sched::SchedPolicy::kFairShare,
                         sched::OverloadPolicy::kBlock);
  std::vector<uint64_t> order;
  for (uint64_t tenant = 64; tenant >= 1; --tenant) {
    ASSERT_TRUE(queue.Push(MakeTask(tenant, &order)));
  }
  queue.Shutdown();
  sched::Task task;
  sched::TaskOutcome outcome;
  while (queue.Pop(&task, &outcome)) task.fn(outcome, task.wait);
  ASSERT_EQ(order.size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i + 1);
}

TEST(FairQueueTest, ManyTenantHeapStaysProportionalUnderLoad) {
  // 60 backlogged tenants, weight 3 for every third tenant: across the
  // first half of the dispatches, the heavy group's per-capita share must
  // sit clearly above the light group's (stride fairness survives the
  // linear-scan → pass-ordered-heap swap), and two identical runs must
  // dispatch identically (heap order is deterministic).
  auto run = [] {
    sched::FairQueue queue(sched::SchedPolicy::kFairShare,
                           sched::OverloadPolicy::kBlock);
    std::vector<uint64_t> order;
    constexpr uint64_t kTenants = 60;
    constexpr int kTasksEach = 6;
    for (uint64_t tenant = 1; tenant <= kTenants; ++tenant) {
      queue.RegisterTenant(
          tenant, sched::TenantOptions{tenant % 3 == 0 ? 3u : 1u});
    }
    for (int round = 0; round < kTasksEach; ++round) {
      for (uint64_t tenant = 1; tenant <= kTenants; ++tenant) {
        EXPECT_TRUE(queue.Push(MakeTask(tenant, &order)));
      }
    }
    queue.Shutdown();
    sched::Task task;
    sched::TaskOutcome outcome;
    while (queue.Pop(&task, &outcome)) task.fn(outcome, task.wait);
    return order;
  };
  std::vector<uint64_t> order = run();
  ASSERT_EQ(order.size(), 360u);
  size_t heavy_first_half = 0, light_first_half = 0;
  for (size_t i = 0; i < order.size() / 2; ++i) {
    (order[i] % 3 == 0 ? heavy_first_half : light_first_half) += 1;
  }
  // Per-capita: 20 heavy tenants vs 40 light. Weight 3:1 means the heavy
  // group's per-capita dispatch rate should be ~3x in the contended half.
  const double heavy_rate = static_cast<double>(heavy_first_half) / 20.0;
  const double light_rate = static_cast<double>(light_first_half) / 40.0;
  EXPECT_GT(heavy_rate, 2.0 * light_rate)
      << "heavy=" << heavy_first_half << " light=" << light_first_half;
  EXPECT_EQ(order, run()) << "heap dispatch order is not deterministic";
}

TEST(FairQueueTest, ShutdownDrainsAdmittedTasksThenStops) {
  sched::FairQueue queue(sched::SchedPolicy::kFifo,
                         sched::OverloadPolicy::kBlock);
  std::vector<uint64_t> order;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Push(MakeTask(1, &order)));
  queue.Shutdown();
  EXPECT_FALSE(queue.Push(MakeTask(1, &order)));
  sched::Task task;
  sched::TaskOutcome outcome;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.Pop(&task, &outcome));
  EXPECT_FALSE(queue.Pop(&task, &outcome));
}

// ---------------------------------------------------------------------------
// Service-level scheduler tests
// ---------------------------------------------------------------------------

ServiceOptions MakeOptions(size_t workers, size_t cache) {
  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = cache;
  options.memoize = cache > 0;
  return options;
}

/// Eight pairwise-distinct requests against `fx` (one per problem kind).
std::vector<DecisionRequest> DistinctWorkload(const AuditFixture& fx) {
  std::vector<DecisionRequest> requests;
  for (ProblemKind kind : AllProblemKinds()) {
    DecisionRequest request;
    request.kind = kind;
    request.query = fx.by_patient;
    request.cinstance = fx.audited;
    request.rcqp_max_tuples = 2;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Occupies the service's (single) worker until released: submits one
/// request whose completion callback blocks. While plugged, every later
/// submission parks in the queue, making dispatch order fully
/// deterministic.
class WorkerPlug {
 public:
  void Install(CompletenessService* service, SettingHandle handle,
               const AuditFixture& fx) {
    DecisionRequest request;
    request.kind = ProblemKind::kRcdpStrong;
    request.query = fx.all_cities;  // distinct from DistinctWorkload requests
    request.cinstance = fx.audited;
    service->SubmitAsync(ServiceRequest{handle, std::move(request)},
                         [this](Decision) {
                           started_.set_value();
                           release_.get_future().wait();
                         });
    started_.get_future().wait();  // the worker is now inside the callback
  }
  void Release() { release_.set_value(); }

 private:
  std::promise<void> started_;
  std::promise<void> release_;
};

struct CompletionLog {
  std::mutex mu;
  std::vector<uint64_t> order;  // completing tenant ids
  std::promise<void> all_done;
  size_t expected = 0;
  size_t completed = 0;

  std::function<void(Decision)> Callback(uint64_t tenant) {
    return [this, tenant](Decision decision) {
      ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tenant);
      if (++completed == expected) all_done.set_value();
    };
  }
};

/// Runs the contended two-tenant scenario under `policy` with one worker:
/// 8 expensive-tenant requests enqueued BEFORE 8 cheap-tenant requests,
/// cheap weighted 4:1 over expensive. Returns completion order as tenant
/// ids (1 = cheap, 2 = expensive).
std::vector<uint64_t> RunContendedScenario(sched::SchedPolicy policy) {
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.memoize = false;
  options.policy = policy;
  CompletenessService service(options);

  AuditFixture cheap_fx = MakeAuditFixture(0);
  AuditFixture heavy_fx = MakeAuditFixture(1);
  ShardOptions cheap_opts;
  cheap_opts.weight = 4;
  ShardOptions heavy_opts;
  heavy_opts.weight = 1;
  // Cheap registers first: deterministic stride tie-break by tenant id.
  Result<SettingHandle> cheap = service.RegisterSetting(cheap_fx.setting,
                                                        cheap_opts);
  Result<SettingHandle> heavy = service.RegisterSetting(heavy_fx.setting,
                                                        heavy_opts);
  EXPECT_TRUE(cheap.ok() && heavy.ok());

  WorkerPlug plug;
  plug.Install(&service, *heavy, heavy_fx);

  CompletionLog log;
  log.expected = 16;
  // The expensive tenant's whole backlog is enqueued first.
  for (DecisionRequest& request : DistinctWorkload(heavy_fx)) {
    service.SubmitAsync(ServiceRequest{*heavy, std::move(request)},
                        log.Callback(2));
  }
  for (DecisionRequest& request : DistinctWorkload(cheap_fx)) {
    service.SubmitAsync(ServiceRequest{*cheap, std::move(request)},
                        log.Callback(1));
  }
  plug.Release();
  log.all_done.get_future().wait();

  // Fair-share must leave the cheap tenant's average wait at or below the
  // expensive tenant's (it drains earlier by weight).
  if (policy == sched::SchedPolicy::kFairShare) {
    Result<EngineCounters> cheap_counters = service.counters(*cheap);
    Result<EngineCounters> heavy_counters = service.counters(*heavy);
    EXPECT_TRUE(cheap_counters.ok() && heavy_counters.ok());
    EXPECT_GT(cheap_counters->waited, 0u);
    EXPECT_GT(heavy_counters->waited, 0u);
    EXPECT_LE(cheap_counters->wait_micros / cheap_counters->waited,
              heavy_counters->wait_micros / heavy_counters->waited);
  }
  std::lock_guard<std::mutex> lock(log.mu);
  return log.order;
}

TEST(SchedServiceTest, FairShareInterleavesCheapTenantUnderOneWorker) {
  std::vector<uint64_t> order =
      RunContendedScenario(sched::SchedPolicy::kFairShare);
  ASSERT_EQ(order.size(), 16u);
  size_t first_heavy = order.size(), last_cheap = 0, last_heavy = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 2 && first_heavy == order.size()) first_heavy = i;
    (order[i] == 1 ? last_cheap : last_heavy) = i;
  }
  // Interleaved, not strictly after: the cheap tenant finishes well before
  // the expensive backlog does, and at least one expensive request
  // completes before the last cheap one (both make progress).
  EXPECT_LT(last_cheap, last_heavy);
  EXPECT_LE(last_cheap, 11u) << "cheap tenant did not get its 4:1 share";
  EXPECT_LT(first_heavy, last_cheap) << "expensive tenant starved";
}

TEST(SchedServiceTest, DefaultFifoCompletesCheapTenantStrictlyAfter) {
  // The legacy policy control: everything enqueued first finishes first.
  std::vector<uint64_t> order =
      RunContendedScenario(sched::SchedPolicy::kFifo);
  ASSERT_EQ(order.size(), 16u);
  std::vector<uint64_t> expected(8, 2);
  expected.insert(expected.end(), 8, 1);
  EXPECT_EQ(order, expected);
}

TEST(SchedServiceTest, QueuedDeadlineIsShedBeforeEvaluation) {
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  AuditFixture fx = MakeAuditFixture();
  Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
  ASSERT_TRUE(handle.ok());

  WorkerPlug plug;
  plug.Install(&service, *handle, fx);

  ServiceRequest request;
  request.setting = *handle;
  request.request.kind = ProblemKind::kRcdpStrong;
  request.request.query = fx.by_patient;
  request.request.cinstance = fx.audited;
  request.sched.deadline = sched::DeadlineAfterMs(40);
  std::future<Decision> future = service.SubmitAsync(std::move(request));

  // Let the deadline lapse while the request is parked, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  plug.Release();
  Decision decision = future.get();
  EXPECT_EQ(decision.status.code(), StatusCode::kDeadlineExceeded);

  Result<EngineCounters> counters = service.counters(*handle);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->expired, 1u);
  // Shed BEFORE evaluation: only the plug request ever reached a decider.
  EXPECT_EQ(counters->cache_misses, 1u);
}

TEST(SchedServiceTest, CoalescedGroupSurvivesPartialCancellation) {
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.memoize = false;
  CompletenessService service(options);
  AuditFixture fx = MakeAuditFixture();
  Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
  ASSERT_TRUE(handle.ok());

  WorkerPlug plug;
  plug.Install(&service, *handle, fx);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  sched::CancelSource sources[3];
  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 3; ++i) {
    ServiceRequest sr;
    sr.setting = *handle;
    sr.request = request;
    sr.sched.cancel = sources[i].token();
    futures.push_back(service.SubmitAsync(std::move(sr)));
  }
  // Two of three waiters cancel: the group must still evaluate for the
  // third.
  sources[0].Cancel();
  sources[1].Cancel();
  plug.Release();

  EXPECT_EQ(futures[0].get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(futures[1].get().status.code(), StatusCode::kCancelled);
  Decision live = futures[2].get();
  EXPECT_TRUE(live.status.ok()) << live.status.ToString();

  Result<EngineCounters> counters = service.counters(*handle);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->requests, 4u);  // plug + 3 coalesced submissions
  EXPECT_EQ(counters->cancelled, 2u);
  EXPECT_EQ(counters->cache_misses, 2u);  // plug + the surviving evaluation
}

TEST(SchedServiceTest, CoalescedGroupShedsOnlyWhenAllWaitersCancel) {
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.memoize = false;
  CompletenessService service(options);
  AuditFixture fx = MakeAuditFixture();
  Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
  ASSERT_TRUE(handle.ok());

  WorkerPlug plug;
  plug.Install(&service, *handle, fx);

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  sched::CancelSource sources[3];
  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 3; ++i) {
    ServiceRequest sr;
    sr.setting = *handle;
    sr.request = request;
    sr.sched.cancel = sources[i].token();
    futures.push_back(service.SubmitAsync(std::move(sr)));
  }
  for (sched::CancelSource& source : sources) source.Cancel();
  plug.Release();

  for (std::future<Decision>& future : futures) {
    EXPECT_EQ(future.get().status.code(), StatusCode::kCancelled);
  }
  Result<EngineCounters> counters = service.counters(*handle);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->cancelled, 3u);
  // The evaluation never ran: only the plug's miss exists.
  EXPECT_EQ(counters->cache_misses, 1u);
  EXPECT_EQ(counters->requests, 4u);
}

TEST(SchedServiceTest, OverQuotaRequestsAreRejectedWithUnavailable) {
  ServiceOptions options;
  options.num_workers = 1;
  options.overload = sched::OverloadPolicy::kReject;
  CompletenessService service(options);
  AuditFixture fx = MakeAuditFixture();
  ShardOptions shard_options;
  shard_options.max_queue = 1;
  Result<SettingHandle> handle =
      service.RegisterSetting(fx.setting, shard_options);
  ASSERT_TRUE(handle.ok());

  WorkerPlug plug;
  plug.Install(&service, *handle, fx);

  std::vector<DecisionRequest> distinct = DistinctWorkload(fx);
  // First distinct request fills the single queue slot; the second is
  // refused; a third that COALESCES with the first consumes no slot.
  std::future<Decision> queued =
      service.SubmitAsync(ServiceRequest{*handle, distinct[0]});
  std::future<Decision> rejected =
      service.SubmitAsync(ServiceRequest{*handle, distinct[1]});
  std::future<Decision> coalesced =
      service.SubmitAsync(ServiceRequest{*handle, distinct[0]});

  Decision rejected_decision = rejected.get();  // resolved synchronously
  EXPECT_EQ(rejected_decision.status.code(), StatusCode::kUnavailable);

  plug.Release();
  EXPECT_TRUE(queued.get().status.ok());
  Decision joined = coalesced.get();
  EXPECT_TRUE(joined.status.ok());
  EXPECT_TRUE(joined.from_cache);

  Result<EngineCounters> counters = service.counters(*handle);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->rejected, 1u);
  EXPECT_EQ(counters->coalesced, 1u);
}

TEST(SchedServiceTest, SubmitStreamMatchesSubmitBatch) {
  AuditFixture fx_a = MakeAuditFixture(0);
  AuditFixture fx_b = MakeAuditFixture(1);
  for (size_t workers : {0u, 3u}) {
    for (sched::SchedPolicy policy :
         {sched::SchedPolicy::kFifo, sched::SchedPolicy::kFairShare}) {
      ServiceOptions options;
      options.num_workers = workers;
      options.cache_capacity = 0;  // from_cache is then deterministic
      options.memoize = false;
      options.policy = policy;

      auto build_workload = [&](CompletenessService& service,
                                std::vector<ServiceRequest>* out) {
        Result<SettingHandle> a = service.RegisterSetting(fx_a.setting);
        Result<SettingHandle> b = service.RegisterSetting(fx_b.setting);
        ASSERT_TRUE(a.ok() && b.ok());
        for (const DecisionRequest& request : DistinctWorkload(fx_a)) {
          out->push_back(ServiceRequest{*a, request});
        }
        for (const DecisionRequest& request : DistinctWorkload(fx_b)) {
          out->push_back(ServiceRequest{*b, request});
        }
        // Duplicates and an unknown handle exercise dup delivery and
        // error slots through both paths.
        out->push_back(ServiceRequest{*a, DistinctWorkload(fx_a)[0]});
        out->push_back(ServiceRequest{*a, DistinctWorkload(fx_a)[0]});
        out->push_back(ServiceRequest{SettingHandle{999}, DistinctWorkload(fx_a)[1]});
      };

      CompletenessService batch_service(options);
      std::vector<ServiceRequest> batch_workload;
      build_workload(batch_service, &batch_workload);
      std::vector<Decision> batch = batch_service.SubmitBatch(batch_workload);

      // Push flavor.
      CompletenessService push_service(options);
      std::vector<ServiceRequest> push_workload;
      build_workload(push_service, &push_workload);
      std::vector<Decision> pushed(push_workload.size());
      std::vector<int> delivered(push_workload.size(), 0);
      push_service.SubmitStream(push_workload,
                                [&](size_t index, const Decision& decision) {
                                  pushed[index] = decision;
                                  ++delivered[index];
                                });

      // Pull flavor.
      CompletenessService pull_service(options);
      std::vector<ServiceRequest> pull_workload;
      build_workload(pull_service, &pull_workload);
      std::vector<Decision> pulled(pull_workload.size());
      DecisionStream stream;
      pull_service.SubmitStream(pull_workload, &stream);
      stream.Drain([&](StreamedDecision item) {
        pulled[item.index] = std::move(item.decision);
      });

      ASSERT_EQ(batch.size(), pushed.size());
      ASSERT_EQ(batch.size(), pulled.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(delivered[i], 1) << "index " << i << " delivered twice";
        EXPECT_EQ(batch[i].ToString(), pushed[i].ToString())
            << "push mismatch at " << i << " (workers=" << workers << ")";
        EXPECT_EQ(batch[i].ToString(), pulled[i].ToString())
            << "pull mismatch at " << i << " (workers=" << workers << ")";
        EXPECT_EQ(batch[i].from_cache, pushed[i].from_cache);
        EXPECT_EQ(batch[i].from_cache, pulled[i].from_cache);
        EXPECT_EQ(batch[i].status.code(), pushed[i].status.code());
        EXPECT_EQ(batch[i].status.code(), pulled[i].status.code());
      }
    }
  }
}

TEST(SchedServiceTest, BatchDuplicateKeepsOwnCancellationFate) {
  // Two identical requests in one batch form a dedup group; like an
  // in-flight flight group, the computation survives as long as ONE
  // member is live, and each member reports its own fate.
  AuditFixture fx = MakeAuditFixture();
  for (size_t workers : {0u, 2u}) {
    CompletenessService service(MakeOptions(workers, /*cache=*/0));
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));
    DecisionRequest request;
    request.kind = ProblemKind::kRcdpStrong;
    request.query = fx.by_patient;
    request.cinstance = fx.audited;

    sched::CancelSource cancelled_source;
    cancelled_source.Cancel();
    ServiceRequest doomed{handle, request};
    doomed.sched.cancel = cancelled_source.token();
    ServiceRequest live{handle, request};  // no token: permanently live

    std::vector<Decision> decisions = service.SubmitBatch({doomed, live});
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_EQ(decisions[0].status.code(), StatusCode::kCancelled);
    ASSERT_TRUE(decisions[1].status.ok()) << decisions[1].status.ToString();

    ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.cache_misses, 1u);
    EXPECT_EQ(counters.cancelled, 1u);

    // When EVERY member is cancelled the group is shed unevaluated.
    sched::CancelSource other_source;
    other_source.Cancel();
    ServiceRequest doomed_too{handle, request};
    doomed_too.sched.cancel = other_source.token();
    decisions = service.SubmitBatch({doomed, doomed_too});
    EXPECT_EQ(decisions[0].status.code(), StatusCode::kCancelled);
    EXPECT_EQ(decisions[1].status.code(), StatusCode::kCancelled);
    ASSERT_OK_AND_ASSIGN(after, service.counters(handle));
    EXPECT_EQ(after.cache_misses, 1u) << "shed group was evaluated";
    EXPECT_EQ(after.cancelled, 3u);
  }
}

TEST(SchedServiceTest, ReentrantBoundedPullStreamDoesNotDeadlock) {
  // A completion callback (on the pool's only worker) submits a pull
  // stream whose bound is smaller than the batch: inline delivery must
  // ignore the bound — this thread is also the only consumer.
  AuditFixture fx = MakeAuditFixture();
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
  ASSERT_TRUE(handle.ok());

  DecisionRequest trigger;
  trigger.kind = ProblemKind::kRcqpWeak;
  trigger.query = fx.by_patient;

  std::promise<size_t> streamed;
  service.SubmitAsync(
      ServiceRequest{*handle, trigger}, [&](Decision) {
        std::vector<ServiceRequest> nested;
        for (const DecisionRequest& request : DistinctWorkload(fx)) {
          nested.push_back(ServiceRequest{*handle, request});
        }
        DecisionStream stream(/*capacity=*/1);  // smaller than the batch
        service.SubmitStream(nested, &stream);
        size_t count = 0;
        StreamedDecision item;
        while (stream.Next(&item)) ++count;
        streamed.set_value(count);
      });
  std::future<size_t> future = streamed.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "re-entrant bounded stream deadlocked the worker";
  EXPECT_EQ(future.get(), 8u);
}

TEST(SchedServiceTest, BoundedStreamWithBlockingQuotaStaysLive) {
  // The deadlock-cycle configuration: a bounded pull stream (workers wait
  // for the consumer) plus a blocking in-queue quota (the submitting
  // thread — the eventual consumer — waits for the workers). The service
  // must detect that admission may block and fall back to unbounded
  // delivery rather than wedging.
  AuditFixture fx = MakeAuditFixture();
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;
  options.memoize = false;
  ASSERT_EQ(options.overload, sched::OverloadPolicy::kBlock);
  CompletenessService service(options);
  ShardOptions shard_options;
  shard_options.max_queue = 2;
  Result<SettingHandle> handle =
      service.RegisterSetting(fx.setting, shard_options);
  ASSERT_TRUE(handle.ok());

  std::future<size_t> done = std::async(std::launch::async, [&] {
    std::vector<ServiceRequest> requests;
    for (const DecisionRequest& request : DistinctWorkload(fx)) {
      requests.push_back(ServiceRequest{*handle, request});
    }
    DecisionStream stream(/*capacity=*/1);
    service.SubmitStream(requests, &stream);  // single-threaded consumer
    size_t count = 0;
    StreamedDecision item;
    while (stream.Next(&item)) ++count;
    return count;
  });
  ASSERT_EQ(done.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "bounded stream + blocking quota deadlocked the submission";
  EXPECT_EQ(done.get(), 8u);
}

/// Polls `service` until `handle`'s shard shows at least `misses` claimed
/// evaluations — i.e. a worker has started deciding (the miss is counted
/// under the shard lock when the evaluation is claimed, before it runs).
void WaitForEvaluationStart(CompletenessService& service, SettingHandle handle,
                            uint64_t misses = 1) {
  for (int i = 0; i < 2000; ++i) {
    Result<EngineCounters> counters = service.counters(handle);
    ASSERT_TRUE(counters.ok());
    if (counters->cache_misses >= misses) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "no evaluation started";
}

void ExpectPartitionHolds(const EngineCounters& counters) {
  EXPECT_EQ(counters.requests,
            counters.cache_hits + counters.cache_misses + counters.rejected +
                counters.expired + counters.cancelled)
      << counters.ToString();
}

TEST(SchedServiceTest, RunningEvaluationAbortsOnMidRunDeadline) {
  // The headline bugfix: a deadline that expires while the decider is
  // ALREADY RUNNING must abort it at a checkpoint — before this PR the
  // evaluation ran to its (here unreachable within the deadline) budget.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/40,
                                                     /*vars=*/6);
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  ServiceRequest request;
  request.setting = handle;
  request.request = fx.Request();
  request.request.options.max_steps = 20'000'000;  // ≫ reachable in 250ms
  request.sched.deadline = sched::DeadlineAfterMs(250);
  std::future<Decision> future = service.SubmitAsync(std::move(request));

  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "mid-run deadline did not abort the evaluation";
  Decision decision = future.get();
  EXPECT_EQ(decision.status.code(), StatusCode::kDeadlineExceeded)
      << decision.status.ToString();
  EXPECT_FALSE(decision.from_cache);
  EXPECT_GT(decision.stats.valuations, 0u)
      << "no partial stats from the aborted run";

  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.expired, 1u);
  EXPECT_EQ(counters.cache_misses, 0u)
      << "the aborted claim was not re-filed as expired";
  EXPECT_EQ(counters.shed_running, 1u);
  EXPECT_GT(counters.aborted_steps, 0u);
  ExpectPartitionHolds(counters);

  // Never cached: resubmitting the identical request must evaluate again —
  // a second mid-run abort (a fresh shed_running increment, no from_cache)
  // proves the first abort was not replayed from the LRU.
  ServiceRequest again;
  again.setting = handle;
  again.request = fx.Request();
  again.request.options.max_steps = 20'000'000;
  again.sched.deadline = sched::DeadlineAfterMs(250);
  Decision retry = service.Decide(again);
  EXPECT_EQ(retry.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(retry.from_cache);
  ASSERT_OK_AND_ASSIGN(after, service.counters(handle));
  EXPECT_EQ(after.shed_running, 2u) << "the abort was served from the cache";
}

TEST(SchedServiceTest, RunningFlightGroupAbortsOnlyWhenLastWaiterCancels) {
  // Two waiters coalesce on one slow evaluation. The first Cancel() must
  // NOT stop the running computation; the second (last) one must.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/40,
                                                     /*vars=*/6);
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest slow = fx.Request();
  slow.options.max_steps = 20'000'000;
  sched::CancelSource first, second;
  ServiceRequest a{handle, slow};
  a.sched.cancel = first.token();
  ServiceRequest b{handle, slow};
  b.sched.cancel = second.token();
  std::future<Decision> future_a = service.SubmitAsync(std::move(a));
  std::future<Decision> future_b = service.SubmitAsync(std::move(b));

  WaitForEvaluationStart(service, handle);
  first.Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(future_b.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout)
      << "a single waiter's cancel aborted a group another waiter needs";

  second.Cancel();
  ASSERT_EQ(future_a.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "the last waiter's cancel did not abort the running evaluation";
  ASSERT_EQ(future_b.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future_a.get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(future_b.get().status.code(), StatusCode::kCancelled);

  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.cancelled, 2u);
  EXPECT_EQ(counters.cache_misses, 0u);
  EXPECT_EQ(counters.shed_running, 1u);
  ExpectPartitionHolds(counters);
}

TEST(SchedServiceTest, LateDeadlinelessJoinerLiftsARunningDeadline) {
  // Deadline symmetry with cancellation: a waiter that joins an
  // already-running evaluation without a deadline must LIFT the run's
  // deadline — the original waiter's deadline expiring mid-run must not
  // rob the live joiner of its answer.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/40,
                                                     /*vars=*/3);
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest slow = fx.Request();  // ~64^3 steps: slow but finite
  ServiceRequest deadlined{handle, slow};
  deadlined.sched.deadline = sched::DeadlineAfterMs(400);
  std::future<Decision> first = service.SubmitAsync(std::move(deadlined));
  WaitForEvaluationStart(service, handle);
  // Joins the RUNNING group with no deadline of its own.
  std::future<Decision> second =
      service.SubmitAsync(ServiceRequest{handle, slow});

  Decision lifted = second.get();
  EXPECT_TRUE(lifted.status.ok())
      << "the run aborted on the first waiter's deadline despite a live "
         "deadline-less joiner: "
      << lifted.status.ToString();
  // The original waiter receives the (possibly late) answer too.
  EXPECT_TRUE(first.get().status.ok());
  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.shed_running, 0u);
  ExpectPartitionHolds(counters);
}

TEST(SchedServiceTest, SubmitStreamCancellationStopsProducingPromptly) {
  // A streamed batch of slow requests under one cancel source: cancelling
  // mid-drain must abort the running evaluation AND shed everything still
  // queued, so the stream finishes promptly with kCancelled decisions
  // instead of grinding through the remaining searches.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/40,
                                                     /*vars=*/6);
  ServiceOptions options;
  options.num_workers = 1;
  CompletenessService service(options);
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  sched::CancelSource source;
  std::vector<ServiceRequest> requests;
  for (ProblemKind kind :
       {ProblemKind::kRcdpStrong, ProblemKind::kRcdpViable,
        ProblemKind::kMinpStrong, ProblemKind::kMinpViable}) {
    ServiceRequest request;
    request.setting = handle;
    request.request = fx.Request(kind);
    request.request.options.max_steps = 20'000'000;
    request.sched.cancel = source.token();
    requests.push_back(std::move(request));
  }

  DecisionStream stream;
  service.SubmitStream(requests, &stream);
  WaitForEvaluationStart(service, handle);
  source.Cancel();

  std::future<std::vector<StatusCode>> drained =
      std::async(std::launch::async, [&stream] {
        std::vector<StatusCode> codes;
        StreamedDecision item;
        while (stream.Next(&item)) codes.push_back(item.decision.status.code());
        return codes;
      });
  ASSERT_EQ(drained.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "cancelled stream kept producing decisions";
  std::vector<StatusCode> codes = drained.get();
  ASSERT_EQ(codes.size(), requests.size());
  for (StatusCode code : codes) EXPECT_EQ(code, StatusCode::kCancelled);

  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.cancelled, requests.size());
  ExpectPartitionHolds(counters);
}

TEST(StreamShutdownTest, AbandonedBoundedStreamUnblocksProducers) {
  // The consumer walks away from a bounded stream mid-drain: producers
  // blocked on capacity must wake and drop instead of deadlocking.
  sched::Stream<int> stream(/*capacity=*/1);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&stream, p] {
      for (int i = 0; i < 50; ++i) stream.Publish(p * 100 + i);
    });
  }
  int item = 0;
  ASSERT_TRUE(stream.Next(&item));  // consume one, then abandon
  stream.Close();
  std::future<void> joined = std::async(std::launch::async, [&] {
    for (std::thread& producer : producers) producer.join();
  });
  ASSERT_EQ(joined.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "producers stayed blocked on an abandoned stream";
  EXPECT_FALSE(stream.Next(&item)) << "closed stream still yields items";
}

TEST(StreamShutdownTest, PublishRacingCloseNeitherDeadlocksNorDelivers) {
  for (int round = 0; round < 20; ++round) {
    sched::Stream<int> stream(/*capacity=*/2);
    std::thread closer([&stream] { stream.Close(); });
    std::thread publisher([&stream] {
      for (int i = 0; i < 16; ++i) stream.Publish(i);
    });
    closer.join();
    publisher.join();
    int item = 0;
    EXPECT_FALSE(stream.Next(&item));
  }
}

TEST(StreamShutdownTest, AbandonedServiceStreamKeepsPoolAndWaitersLive) {
  // Abandoning a bounded SubmitStream mid-drain must not wedge the pool:
  // workers blocked publishing wake on Close, a parked flight-group waiter
  // coalesced onto a streamed request still resolves, and the service
  // keeps serving (and shuts down) normally.
  AuditFixture fx = MakeAuditFixture();
  auto run = [&fx] {
    ServiceOptions options;
    options.num_workers = 2;
    options.cache_capacity = 0;
    options.memoize = false;
    CompletenessService service(options);
    Result<SettingHandle> handle = service.RegisterSetting(fx.setting);
    ASSERT_TRUE(handle.ok());

    std::vector<ServiceRequest> requests;
    for (const DecisionRequest& request : DistinctWorkload(fx)) {
      requests.push_back(ServiceRequest{*handle, request});
    }
    DecisionStream stream(/*capacity=*/1);
    service.SubmitStream(requests, &stream);
    // A waiter that coalesces with one of the streamed requests; it must
    // resolve even after the stream is abandoned.
    std::future<Decision> waiter =
        service.SubmitAsync(ServiceRequest{*handle, requests[7].request});

    StreamedDecision item;
    ASSERT_TRUE(stream.Next(&item));  // drain one, then walk away
    stream.Close();

    ASSERT_EQ(waiter.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "flight-group waiter leaked when the stream was abandoned";
    EXPECT_TRUE(waiter.get().status.ok());
    // The pool still serves fresh work after the abandoned stream.
    Decision after = service.Decide(*handle, requests[0].request);
    EXPECT_TRUE(after.status.ok()) << after.status.ToString();
    // An abandoned stream may be destroyed only after the producer side
    // finished with it (stragglers publish into the void until then).
    stream.WaitProducersFinished();
  };  // ~CompletenessService drains; a wedged pool would hang here
  std::future<void> done = std::async(std::launch::async, run);
  ASSERT_EQ(done.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "abandoned bounded stream wedged the worker pool";
}

TEST(SchedServiceTest, StressMixedTrafficKeepsCounterInvariant) {
  // High worker/tenant counts (scaled up further under RELCOMP_SCHED_STRESS):
  // several tenants submit async + batch + stream traffic concurrently with
  // mixed priorities, dead deadlines, and cancellations; afterwards every
  // shard must satisfy
  //   requests == hits + misses + rejected + expired + cancelled
  // and the per-shard sum must equal TotalCounters().
  const bool big = std::getenv("RELCOMP_SCHED_STRESS") != nullptr;
  const size_t kTenants = big ? 6 : 3;
  const size_t kThreads = big ? 8 : 4;
  const size_t kRounds = big ? 40 : 12;

  ServiceOptions options;
  options.num_workers = big ? 8 : 4;
  options.cache_capacity = 64;
  options.policy = sched::SchedPolicy::kFairShare;
  CompletenessService service(options);

  std::vector<AuditFixture> fixtures;
  std::vector<SettingHandle> handles;
  for (size_t t = 0; t < kTenants; ++t) {
    fixtures.push_back(MakeAuditFixture(static_cast<int>(t)));
    ShardOptions shard_options;
    shard_options.weight = static_cast<uint32_t>(1 + t % 4);
    Result<SettingHandle> handle =
        service.RegisterSetting(fixtures.back().setting, shard_options);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }

  std::vector<std::thread> threads;
  for (size_t thread_id = 0; thread_id < kThreads; ++thread_id) {
    threads.emplace_back([&, thread_id] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t t = (thread_id + round) % kTenants;
        std::vector<DecisionRequest> workload = DistinctWorkload(fixtures[t]);
        switch ((thread_id + round) % 4) {
          case 0: {  // async with mixed priority and occasional cancels
            sched::CancelSource source;
            std::vector<std::future<Decision>> futures;
            for (size_t i = 0; i < workload.size(); ++i) {
              ServiceRequest request;
              request.setting = handles[t];
              request.request = workload[i];
              request.sched.priority =
                  static_cast<sched::Priority>(i % sched::kNumPriorities);
              if (i % 3 == 0) request.sched.cancel = source.token();
              futures.push_back(service.SubmitAsync(std::move(request)));
            }
            if (round % 2 == 0) source.Cancel();
            for (std::future<Decision>& future : futures) future.get();
            break;
          }
          case 1: {  // sync batch with duplicates
            std::vector<DecisionRequest> batch = workload;
            batch.push_back(workload[0]);
            batch.push_back(workload[0]);
            service.SubmitBatch(handles[t], batch);
            break;
          }
          case 2: {  // stream
            std::vector<ServiceRequest> requests;
            for (const DecisionRequest& r : workload) {
              requests.push_back(ServiceRequest{handles[t], r});
            }
            size_t seen = 0;
            service.SubmitStream(requests,
                                 [&seen](size_t, const Decision&) { ++seen; });
            EXPECT_EQ(seen, requests.size());
            break;
          }
          case 3: {  // expired deadlines + plain Decides
            ServiceRequest dead;
            dead.setting = handles[t];
            dead.request = workload[0];
            dead.sched.deadline =
                sched::Clock::now() - std::chrono::milliseconds(5);
            service.SubmitAsync(std::move(dead)).get();
            service.Decide(handles[t], workload[1 % workload.size()]);
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EngineCounters summed;
  std::set<uint64_t> seen;  // fixtures may dedupe onto a shared shard
  for (SettingHandle handle : handles) {
    if (!seen.insert(handle.id).second) continue;
    Result<EngineCounters> counters = service.counters(handle);
    ASSERT_TRUE(counters.ok());
    EXPECT_EQ(counters->requests,
              counters->cache_hits + counters->cache_misses +
                  counters->rejected + counters->expired +
                  counters->cancelled)
        << "shard " << handle.id << ": " << counters->ToString();
    summed += *counters;
  }
  EXPECT_EQ(summed.ToString(), service.TotalCounters().ToString());
}

}  // namespace
}  // namespace relcomp
