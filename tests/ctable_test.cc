// Unit tests for c-tables: conditions, valuations, c-instances (Sec. 2.2).
#include <gtest/gtest.h>

#include "ctable/cinstance.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

TEST(ValuationTest, BindResolveUnbind) {
  Valuation mu;
  EXPECT_FALSE(mu.IsBound(V(0)));
  mu.Bind(V(0), I(7));
  EXPECT_TRUE(mu.IsBound(V(0)));
  EXPECT_EQ(*mu.Get(V(0)), I(7));
  mu.Unbind(V(0));
  EXPECT_FALSE(mu.IsBound(V(0)));
}

TEST(ValuationTest, ResolveConstantsPassThrough) {
  Valuation mu;
  EXPECT_EQ(*mu.Resolve(CTerm(I(3))), I(3));
  EXPECT_FALSE(mu.Resolve(CTerm(V(9))).has_value());
}

TEST(ConditionTest, TrivialConditionIsTrue) {
  Valuation mu;
  EXPECT_EQ(*Condition::True().Eval(mu), true);
  EXPECT_TRUE(Condition::True().IsTrivial());
}

TEST(ConditionTest, NeqConst) {
  Condition c = Condition::VarNeqConst(V(0), I(2001));
  Valuation mu;
  mu.Bind(V(0), I(2000));
  EXPECT_EQ(*c.Eval(mu), true);
  mu.Bind(V(0), I(2001));
  EXPECT_EQ(*c.Eval(mu), false);
}

TEST(ConditionTest, EqConstAndVarNeqVar) {
  Condition eq = Condition::VarEqConst(V(0), S("EDI"));
  Condition neq = Condition::VarNeqVar(V(0), V(1));
  Valuation mu;
  mu.Bind(V(0), S("EDI"));
  mu.Bind(V(1), S("EDI"));
  EXPECT_EQ(*eq.Eval(mu), true);
  EXPECT_EQ(*neq.Eval(mu), false);
}

TEST(ConditionTest, UnboundVariableYieldsUnknown) {
  Condition c = Condition::VarNeqConst(V(0), I(1));
  Valuation mu;
  EXPECT_FALSE(c.Eval(mu).has_value());
  EXPECT_TRUE(c.PossiblySatisfiable(mu));  // unknown ⇒ possibly true
}

TEST(ConditionTest, ConjunctionSemantics) {
  Condition c({CondAtom{V(0), false, I(1)}, CondAtom{V(1), true, I(2)}});
  Valuation mu;
  mu.Bind(V(0), I(1));
  mu.Bind(V(1), I(3));
  EXPECT_EQ(*c.Eval(mu), true);
  mu.Bind(V(1), I(2));
  EXPECT_EQ(*c.Eval(mu), false);
  EXPECT_FALSE(c.PossiblySatisfiable(mu));
}

TEST(ConditionTest, CollectVarsAndConstants) {
  Condition c({CondAtom{V(3), false, I(1)}, CondAtom{V(4), true, V(3)}});
  std::vector<VarId> vars;
  std::vector<Value> consts;
  c.CollectVars(&vars);
  c.CollectConstants(&consts);
  EXPECT_EQ(vars.size(), 3u);  // with duplicates
  EXPECT_EQ(consts.size(), 1u);
}

TEST(CTableTest, ApplyProducesGroundRelation) {
  CTable t(RelationSchema::Anonymous("R", 2));
  t.AddRow({Cell(I(1)), Cell(V(0))});
  Valuation mu;
  mu.Bind(V(0), S("a"));
  ASSERT_OK_AND_ASSIGN(rel, t.Apply(mu));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({I(1), S("a")}));
}

TEST(CTableTest, ConditionDropsRow) {
  CTable t(RelationSchema::Anonymous("R", 1));
  t.AddRow(CRow{{Cell(V(0))}, Condition::VarNeqConst(V(0), I(5))});
  Valuation mu;
  mu.Bind(V(0), I(5));
  ASSERT_OK_AND_ASSIGN(dropped, t.Apply(mu));
  EXPECT_TRUE(dropped.empty());
  mu.Bind(V(0), I(6));
  ASSERT_OK_AND_ASSIGN(kept, t.Apply(mu));
  EXPECT_EQ(kept.size(), 1u);
}

TEST(CTableTest, TwoRowsCanCollapseUnderValuation) {
  CTable t(RelationSchema::Anonymous("R", 1));
  t.AddRow({Cell(V(0))});
  t.AddRow({Cell(I(1))});
  Valuation mu;
  mu.Bind(V(0), I(1));
  ASSERT_OK_AND_ASSIGN(rel, t.Apply(mu));
  EXPECT_EQ(rel.size(), 1u);  // both rows map to (1)
}

TEST(CTableTest, UnboundCellVariableFails) {
  CTable t(RelationSchema::Anonymous("R", 1));
  t.AddRow({Cell(V(0))});
  Valuation mu;
  Result<Relation> r = t.Apply(mu);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CTableTest, IsGroundDetection) {
  CTable ground(RelationSchema::Anonymous("R", 1));
  ground.AddRow({Cell(I(1))});
  EXPECT_TRUE(ground.IsGround());
  CTable with_var(RelationSchema::Anonymous("R", 1));
  with_var.AddRow({Cell(V(0))});
  EXPECT_FALSE(with_var.IsGround());
  CTable with_cond(RelationSchema::Anonymous("R", 1));
  with_cond.AddRow(CRow{{Cell(I(1))}, Condition::VarNeqConst(V(0), I(1))});
  EXPECT_FALSE(with_cond.IsGround());
}

TEST(CTableTest, FromRelationRoundTrip) {
  Relation r(RelationSchema::Anonymous("R", 2));
  r.Insert({I(1), I(2)});
  r.Insert({I(3), I(4)});
  CTable t = CTable::FromRelation(r);
  EXPECT_TRUE(t.IsGround());
  Valuation empty;
  ASSERT_OK_AND_ASSIGN(back, t.Apply(empty));
  EXPECT_EQ(back, r);
}

TEST(CTableTest, CollectVarsAndConstants) {
  CTable t(RelationSchema::Anonymous("R", 2));
  t.AddRow(CRow{{Cell(V(0)), Cell(I(9))},
                Condition::VarNeqVar(V(0), V(1))});
  std::vector<VarId> vars;
  std::vector<Value> consts;
  t.CollectVars(&vars);
  t.CollectConstants(&consts);
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_EQ(consts.size(), 1u);
}

TEST(CInstanceTest, ApplyAllTables) {
  DatabaseSchema schema = testing::EdgeSchema();
  schema.AddRelation(RelationSchema("N", {Attribute{"x"}}));
  CInstance ci(schema);
  ci.at("E").AddRow({Cell(I(1)), Cell(V(0))});
  ci.at("N").AddRow({Cell(V(0))});
  Valuation mu;
  mu.Bind(V(0), I(2));
  ASSERT_OK_AND_ASSIGN(inst, ci.Apply(mu));
  EXPECT_TRUE(inst.at("E").Contains({I(1), I(2)}));
  EXPECT_TRUE(inst.at("N").Contains({I(2)}));
}

TEST(CInstanceTest, VarsAcrossTablesDeduplicated) {
  DatabaseSchema schema = testing::EdgeSchema();
  schema.AddRelation(RelationSchema("N", {Attribute{"x"}}));
  CInstance ci(schema);
  ci.at("E").AddRow({Cell(V(2)), Cell(V(0))});
  ci.at("N").AddRow({Cell(V(0))});
  std::vector<VarId> vars = ci.Vars();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].id, 0);
  EXPECT_EQ(vars[1].id, 2);
  EXPECT_EQ(ci.VarUniverseSize(), 3u);
}

TEST(CInstanceTest, RemoveRows) {
  CInstance ci(testing::EdgeSchema());
  ci.at("E").AddRow({Cell(I(1)), Cell(I(2))});
  ci.at("E").AddRow({Cell(I(3)), Cell(I(4))});
  EXPECT_EQ(ci.TotalRows(), 2u);
  CInstance smaller = ci.RemoveRows({{0, 0}});
  EXPECT_EQ(smaller.TotalRows(), 1u);
  EXPECT_TRUE(std::holds_alternative<Value>(
      smaller.at("E").rows()[0].cells[0]));
  EXPECT_EQ(std::get<Value>(smaller.at("E").rows()[0].cells[0]), I(3));
}

TEST(CInstanceTest, AllRowPositions) {
  CInstance ci(testing::EdgeSchema());
  ci.at("E").AddRow({Cell(I(1)), Cell(I(2))});
  ci.at("E").AddRow({Cell(I(3)), Cell(I(4))});
  EXPECT_EQ(ci.AllRowPositions().size(), 2u);
}

TEST(CInstanceTest, FromInstanceIsGround) {
  Instance db(testing::EdgeSchema());
  db.AddTuple("E", {I(1), I(2)});
  CInstance ci = CInstance::FromInstance(db);
  EXPECT_TRUE(ci.IsGround());
  EXPECT_EQ(ci.TotalRows(), 1u);
}

}  // namespace
}  // namespace relcomp
