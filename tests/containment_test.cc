// Tests for containment constraints: satisfaction, IND detection, and the
// Example 2.1 FD encoding.
#include <gtest/gtest.h>

#include "query/containment.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

struct CcFixture {
  DatabaseSchema schema;
  DatabaseSchema master_schema;
  Instance db;
  Instance dm;

  CcFixture()
      : schema(MakeSchema()),
        master_schema(MakeMasterSchema()),
        db(schema),
        dm(master_schema) {}

  static DatabaseSchema MakeSchema() {
    DatabaseSchema s;
    s.AddRelation(RelationSchema(
        "Visit", {Attribute{"nhs"}, Attribute{"city"}, Attribute{"yob"}}));
    return s;
  }
  static DatabaseSchema MakeMasterSchema() {
    DatabaseSchema s;
    s.AddRelation(RelationSchema(
        "Pm", {Attribute{"nhs"}, Attribute{"yob"}, Attribute{"zip"}}));
    s.AddRelation(RelationSchema("Empty1", {Attribute{"w"}}));
    return s;
  }

  // CC: Edinburgh visits' (nhs, yob) must appear in π(nhs, yob)(Pm).
  ContainmentConstraint EdiCc() const {
    ConjunctiveQuery q({CTerm(V(0)), CTerm(V(2))},
                       {RelAtom{"Visit", {V(0), V(1), V(2)}}},
                       {CondAtom{V(1), false, S("EDI")}});
    return ContainmentConstraint("edi", std::move(q), "Pm", {0, 1});
  }
};

TEST(ContainmentTest, SatisfiedWhenContained) {
  CcFixture fx;
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  fx.dm.AddTuple("Pm", {S("n1"), I(2000), S("EH1")});
  ASSERT_OK_AND_ASSIGN(sat, fx.EdiCc().Satisfied(fx.db, fx.dm));
  EXPECT_TRUE(sat);
}

TEST(ContainmentTest, ViolatedWhenMissingFromMaster) {
  CcFixture fx;
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  ASSERT_OK_AND_ASSIGN(sat, fx.EdiCc().Satisfied(fx.db, fx.dm));
  EXPECT_FALSE(sat);
}

TEST(ContainmentTest, NonMatchingTuplesUnconstrained) {
  CcFixture fx;
  fx.db.AddTuple("Visit", {S("n1"), S("LON"), I(2000)});  // not Edinburgh
  ASSERT_OK_AND_ASSIGN(sat, fx.EdiCc().Satisfied(fx.db, fx.dm));
  EXPECT_TRUE(sat);
}

TEST(ContainmentTest, SatisfiesCCsShortCircuits) {
  CcFixture fx;
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  CCSet ccs = {fx.EdiCc()};
  ASSERT_OK_AND_ASSIGN(sat, SatisfiesCCs(fx.db, fx.dm, ccs));
  EXPECT_FALSE(sat);
  fx.dm.AddTuple("Pm", {S("n1"), I(2000), S("EH1")});
  ASSERT_OK_AND_ASSIGN(sat2, SatisfiesCCs(fx.db, fx.dm, ccs));
  EXPECT_TRUE(sat2);
}

TEST(ContainmentTest, SubsetClosureLemma47a) {
  // If (I, Dm) ⊨ V then every subset of I satisfies V too.
  CcFixture fx;
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  fx.db.AddTuple("Visit", {S("n2"), S("LON"), I(1999)});
  fx.dm.AddTuple("Pm", {S("n1"), I(2000), S("EH1")});
  CCSet ccs = {fx.EdiCc()};
  ASSERT_OK_AND_ASSIGN(sat, SatisfiesCCs(fx.db, fx.dm, ccs));
  ASSERT_TRUE(sat);
  Instance smaller = fx.db;
  smaller.RemoveTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  ASSERT_OK_AND_ASSIGN(sub_sat, SatisfiesCCs(smaller, fx.dm, ccs));
  EXPECT_TRUE(sub_sat);
}

TEST(ContainmentTest, ValidationCatchesArityMismatch) {
  CcFixture fx;
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1), V(2)}}});
  ContainmentConstraint cc("bad", std::move(q), "Pm", {0, 1});  // 1 vs 2
  EXPECT_FALSE(cc.Validate(fx.schema, fx.master_schema).ok());
}

TEST(ContainmentTest, ValidationCatchesUnknownMaster) {
  CcFixture fx;
  ConjunctiveQuery q({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1), V(2)}}});
  ContainmentConstraint cc("bad", std::move(q), "Nope", {0});
  EXPECT_FALSE(cc.Validate(fx.schema, fx.master_schema).ok());
}

TEST(ContainmentTest, IndDetection) {
  CcFixture fx;
  // π(nhs)(Visit) ⊆ π(nhs)(Pm) is an IND.
  ConjunctiveQuery proj({CTerm(V(0))}, {RelAtom{"Visit", {V(0), V(1), V(2)}}});
  ContainmentConstraint ind("ind", proj, "Pm", {0});
  EXPECT_TRUE(ind.IsInd());
  // The selection CC is not an IND (it has a builtin).
  EXPECT_FALSE(fx.EdiCc().IsInd());
  // Repeated head variables are not INDs.
  ConjunctiveQuery dup({CTerm(V(0)), CTerm(V(0))},
                       {RelAtom{"Visit", {V(0), V(1), V(2)}}});
  EXPECT_FALSE(ContainmentConstraint("d", dup, "Pm", {0, 1}).IsInd());
  EXPECT_FALSE(AllInds({ind, fx.EdiCc()}));
  EXPECT_TRUE(AllInds({ind}));
}

TEST(ContainmentTest, FdEncodingDetectsViolation) {
  CcFixture fx;
  // FD nhs → city on Visit.
  ASSERT_OK_AND_ASSIGN(
      fd, EncodeFdAsCc(*fx.schema.Find("Visit"), {0}, 1, "Empty1"));
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  fx.db.AddTuple("Visit", {S("n1"), S("LON"), I(2000)});
  ASSERT_OK_AND_ASSIGN(sat, fd.Satisfied(fx.db, fx.dm));
  EXPECT_FALSE(sat);  // two cities for one NHS
  fx.db.RemoveTuple("Visit", {S("n1"), S("LON"), I(2000)});
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(1999)});  // same city, ok
  ASSERT_OK_AND_ASSIGN(sat2, fd.Satisfied(fx.db, fx.dm));
  EXPECT_TRUE(sat2);
}

TEST(ContainmentTest, FdEncodingCompositeLhs) {
  CcFixture fx;
  ASSERT_OK_AND_ASSIGN(
      fd, EncodeFdAsCc(*fx.schema.Find("Visit"), {0, 1}, 2, "Empty1"));
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2000)});
  fx.db.AddTuple("Visit", {S("n1"), S("LON"), I(1999)});  // differs on lhs
  ASSERT_OK_AND_ASSIGN(sat, fd.Satisfied(fx.db, fx.dm));
  EXPECT_TRUE(sat);
  fx.db.AddTuple("Visit", {S("n1"), S("EDI"), I(2002)});
  ASSERT_OK_AND_ASSIGN(sat2, fd.Satisfied(fx.db, fx.dm));
  EXPECT_FALSE(sat2);
}

TEST(ContainmentTest, FdEncodingRangeChecks) {
  CcFixture fx;
  EXPECT_FALSE(EncodeFdAsCc(*fx.schema.Find("Visit"), {0}, 9, "Empty1").ok());
  EXPECT_FALSE(EncodeFdAsCc(*fx.schema.Find("Visit"), {9}, 0, "Empty1").ok());
}

TEST(ContainmentTest, CcConstantsAndMaxVar) {
  CcFixture fx;
  CCSet ccs = {fx.EdiCc()};
  EXPECT_EQ(CcConstants(ccs).size(), 1u);  // "EDI"
  EXPECT_EQ(CcMaxVarId(ccs), 2);
}

}  // namespace
}  // namespace relcomp
