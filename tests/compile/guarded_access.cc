// Compile-check (positive control): the properly guarded version of
// unguarded_access.cc must compile cleanly under the same
// -Werror=thread-safety-analysis flags. Together the pair proves the
// annotations both accept correct code and reject incorrect code.

#include "util/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    relcomp::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() const {
    relcomp::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable relcomp::Mutex mu_{relcomp::LockRank::kShard, "Account::mu_"};
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
