// Compile-check (negative): an unguarded access to a GUARDED_BY member must
// be REJECTED by clang's thread-safety analysis. CMake registers this TU as
// a WILL_FAIL ctest entry compiled with -Werror=thread-safety-analysis; if
// it ever starts compiling, the annotation macros have gone inert (e.g. a
// broken __has_attribute gate) and the whole static story is void.
// See guarded_access.cc for the positive control.

#include "util/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mu_ not held — the analysis must flag this
  }

 private:
  relcomp::Mutex mu_{relcomp::LockRank::kShard, "Account::mu_"};
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
