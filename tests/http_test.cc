// The live observability endpoint, bottom up.
//
// Parser layer: torn (byte-at-a-time) reads, pipelined requests through
// Consume, the error taxonomy (400/413/431/501/505), keep-alive
// defaults, and response serialization for GET vs HEAD.
//
// Endpoint layer: routing driven through HttpEndpoint::Handle with no
// sockets — 404 with the index body, 405 with Allow, health/readiness,
// unwired surfaces as 503, and the endpoint's self-instrumentation in
// a real MetricsRegistry.
//
// Server layer: real kernel sockets via net::ConnectTcp — torn writes,
// pipelining on one connection, oversized heads answered 431.
//
// Service layer: a two-tenant contended workload scraped concurrently;
// the final /metrics exposition must name every registered family and
// /traces must be a loadable Chrome trace JSON.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_server.h"
#include "net/socket.h"
#include "obs/http_endpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using net::HttpRequest;
using net::HttpRequestParser;
using net::HttpResponse;
using net::ParseState;
using testing::AuditFixture;
using testing::MakeAuditFixture;

// ---------------------------------------------------------------------------
// Parser

constexpr const char kSimpleGet[] =
    "GET /metrics?window=60 HTTP/1.1\r\nHost: localhost\r\n"
    "Accept: text/plain\r\n\r\n";

TEST(HttpParserTest, SimpleGetInOneFeed) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(kSimpleGet, sizeof(kSimpleGet) - 1),
            ParseState::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics?window=60");
  EXPECT_EQ(request.Path(), "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "localhost");
  EXPECT_TRUE(request.KeepAlive());
  // Consuming the only request leaves the parser hungry again.
  EXPECT_EQ(parser.Consume(), ParseState::kNeedMore);
}

TEST(HttpParserTest, ByteAtATimeReassembles) {
  HttpRequestParser parser;
  const size_t n = sizeof(kSimpleGet) - 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    ASSERT_EQ(parser.Feed(kSimpleGet + i, 1), ParseState::kNeedMore)
        << "byte " << i << " should not complete the request";
  }
  ASSERT_EQ(parser.Feed(kSimpleGet + n - 1, 1), ParseState::kComplete);
  EXPECT_EQ(parser.request().Path(), "/metrics");
}

TEST(HttpParserTest, PipelinedRequestsConsumeInOrder) {
  const std::string two =
      "GET /healthz HTTP/1.1\r\n\r\nGET /readyz HTTP/1.1\r\n\r\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(two.data(), two.size()), ParseState::kComplete);
  EXPECT_EQ(parser.request().target, "/healthz");
  ASSERT_EQ(parser.Consume(), ParseState::kComplete);
  EXPECT_EQ(parser.request().target, "/readyz");
  EXPECT_EQ(parser.Consume(), ParseState::kNeedMore);
}

TEST(HttpParserTest, TornAcrossPipelineBoundary) {
  // The second request's bytes arrive in the same read as the tail of
  // the first — then its own tail arrives later.
  const std::string first = "GET /a HTTP/1.1\r\n\r\nGET /b HT";
  const std::string rest = "TP/1.1\r\n\r\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(first.data(), first.size()), ParseState::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  ASSERT_EQ(parser.Consume(), ParseState::kNeedMore);
  ASSERT_EQ(parser.Feed(rest.data(), rest.size()), ParseState::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, OversizedHeadIs431) {
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 128;
  HttpRequestParser parser(limits);
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(512, 'x');
  ASSERT_EQ(parser.Feed(huge.data(), huge.size()), ParseState::kError);
  EXPECT_EQ(parser.error_code(), 431);
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  const std::string bad = "GET /nowhere\r\n\r\n";  // missing version
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(bad.data(), bad.size()), ParseState::kError);
  EXPECT_EQ(parser.error_code(), 400);
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  const std::string v2 = "GET / HTTP/2.0\r\n\r\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(v2.data(), v2.size()), ParseState::kError);
  EXPECT_EQ(parser.error_code(), 505);
}

TEST(HttpParserTest, ChunkedTransferIs501) {
  const std::string chunked =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(chunked.data(), chunked.size()), ParseState::kError);
  EXPECT_EQ(parser.error_code(), 501);
}

TEST(HttpParserTest, ContentLengthBodyWaitsForAllBytes) {
  const std::string head =
      "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(head.data(), head.size()), ParseState::kNeedMore);
  ASSERT_EQ(parser.Feed("hel", 3), ParseState::kNeedMore);
  ASSERT_EQ(parser.Feed("lo", 2), ParseState::kComplete);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  const std::string head =
      "POST / HTTP/1.1\r\nContent-Length: 1024\r\n\r\n";
  ASSERT_EQ(parser.Feed(head.data(), head.size()), ParseState::kError);
  EXPECT_EQ(parser.error_code(), 413);
}

TEST(HttpParserTest, KeepAliveDefaultsPerVersion) {
  auto parse = [](const std::string& text) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(text.data(), text.size()), ParseState::kComplete);
    return parser.request();
  };
  EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n").KeepAlive());
  EXPECT_FALSE(
      parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").KeepAlive());
  EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n").KeepAlive());
  EXPECT_TRUE(
      parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").KeepAlive());
}

TEST(HttpSerializeTest, HeadOmitsBodyButKeepsLength) {
  HttpResponse response;
  response.body = "0123456789";
  const std::string get = SerializeResponse(response, /*head_only=*/false,
                                            /*keep_alive=*/true);
  const std::string head = SerializeResponse(response, /*head_only=*/true,
                                             /*keep_alive=*/false);
  EXPECT_NE(get.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(get.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(get.find("\r\n\r\n0123456789"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_EQ(head.find("0123456789"), std::string::npos);
  EXPECT_NE(head.find("Connection: close\r\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Endpoint routing (no sockets)

HttpRequest Get(const std::string& target, const std::string& method = "GET") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  return request;
}

TEST(ObsEndpointTest, UnknownPathIs404WithIndex) {
  obs::HttpEndpoint endpoint(obs::ObsSurfaces{}, nullptr);
  HttpResponse response = endpoint.Handle(Get("/nosuch"));
  EXPECT_EQ(response.code, 404);
  EXPECT_NE(response.body.find("/metrics"), std::string::npos)
      << "a 404 should tell the caller what does exist";
}

TEST(ObsEndpointTest, NonGetIs405WithAllow) {
  obs::HttpEndpoint endpoint(obs::ObsSurfaces{}, nullptr);
  HttpResponse response = endpoint.Handle(Get("/metrics", "POST"));
  EXPECT_EQ(response.code, 405);
  bool has_allow = false;
  for (const auto& header : response.extra_headers) {
    if (header.first == "Allow") {
      has_allow = true;
      EXPECT_NE(header.second.find("GET"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_allow);
}

TEST(ObsEndpointTest, HealthAlwaysReadinessGated) {
  std::atomic<bool> ready{false};
  obs::ObsSurfaces surfaces;
  surfaces.ready = [&ready] { return ready.load(); };
  obs::HttpEndpoint endpoint(std::move(surfaces), nullptr);
  EXPECT_EQ(endpoint.Handle(Get("/healthz")).code, 200);
  EXPECT_EQ(endpoint.Handle(Get("/readyz")).code, 503);
  ready = true;
  EXPECT_EQ(endpoint.Handle(Get("/readyz")).code, 200);
}

TEST(ObsEndpointTest, UnwiredSurfaceIs503WiredIsServed) {
  obs::ObsSurfaces surfaces;
  surfaces.metrics_prometheus = [] { return std::string("families\n"); };
  obs::HttpEndpoint endpoint(std::move(surfaces), nullptr);
  HttpResponse metrics = endpoint.Handle(Get("/metrics"));
  EXPECT_EQ(metrics.code, 200);
  EXPECT_EQ(metrics.body, "families\n");
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_EQ(endpoint.Handle(Get("/traces")).code, 503);
  EXPECT_EQ(endpoint.Handle(Get("/report")).code, 503);
}

TEST(ObsEndpointTest, InstrumentsItselfThroughTheRegistry) {
  obs::MetricsRegistry registry;
  obs::ObsSurfaces surfaces;
  obs::HttpEndpoint endpoint(std::move(surfaces), &registry);
  endpoint.Handle(Get("/healthz"));
  endpoint.Handle(Get("/healthz"));
  endpoint.Handle(Get("/nosuch"));

  obs::Counter* ok = registry.GetCounter(
      obs::kMetricHttpRequestsTotal, {{"code", "200"}, {"path", "/healthz"}});
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value(), 2u);
  // The unknown path lands in the bounded "other" label, never a new one.
  obs::Counter* other = registry.GetCounter(
      obs::kMetricHttpRequestsTotal, {{"code", "404"}, {"path", "other"}});
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->value(), 1u);
  obs::Gauge* inflight = registry.GetGauge(obs::kMetricHttpInflightRequests);
  ASSERT_NE(inflight, nullptr);
  EXPECT_EQ(inflight->value(), 0) << "requests finished, gauge must net out";
}

// ---------------------------------------------------------------------------
// Server over real sockets

/// One blocking round trip: connect, write `raw` (optionally torn into
/// single-byte writes), read until EOF, return the raw response bytes.
std::string RoundTrip(uint16_t port, const std::string& raw,
                      bool byte_at_a_time = false) {
  Result<net::Socket> conn = net::ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  if (!conn.ok()) return "";
  if (byte_at_a_time) {
    for (size_t i = 0; i < raw.size(); ++i) {
      EXPECT_OK(conn->WriteAll(raw.data() + i, 1));
    }
  } else {
    EXPECT_OK(conn->WriteAll(raw.data(), raw.size()));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    Result<size_t> n = conn->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(buf, *n);
  }
  return response;
}

class EchoServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::HttpServerOptions options;
    options.port = 0;
    options.worker_threads = 2;
    options.max_head_bytes = 512;
    Status started =
        server_.Start(options, [](const HttpRequest& request) {
          HttpResponse response;
          response.body = request.method + " " + request.Path() + "\n";
          return response;
        });
    ASSERT_TRUE(started.ok()) << started.ToString();
  }
  void TearDown() override { server_.Stop(); }

  net::HttpServer server_;
};

TEST_F(EchoServerTest, ServesTornWrites) {
  const std::string response = RoundTrip(
      server_.port(), "GET /torn HTTP/1.1\r\nConnection: close\r\n\r\n",
      /*byte_at_a_time=*/true);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("GET /torn"), std::string::npos);
}

TEST_F(EchoServerTest, ServesPipelinedRequestsInOrder) {
  const std::string response = RoundTrip(
      server_.port(),
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\nConnection: close\r\n\r\n");
  const size_t first = response.find("GET /first");
  const size_t second = response.find("GET /second");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST_F(EchoServerTest, HeadGetsNoBody) {
  const std::string response = RoundTrip(
      server_.port(), "HEAD /h HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(response.find("HEAD /h\n"), std::string::npos);
}

TEST_F(EchoServerTest, OversizedHeadAnswers431AndCloses) {
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(2048, 'x');
  huge += "\r\n\r\n";
  const std::string response = RoundTrip(server_.port(), huge);
  EXPECT_NE(response.find("431"), std::string::npos);
}

TEST_F(EchoServerTest, MalformedRequestAnswers400) {
  const std::string response = RoundTrip(server_.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(EchoServerTest, StopIsIdempotentAndStopsServing) {
  const uint16_t port = server_.port();
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.serving());
  Result<net::Socket> conn = net::ConnectTcp("127.0.0.1", port);
  if (conn.ok()) {
    // A connect may still land in the kernel backlog race; the read must
    // see EOF, never a served response.
    const std::string raw = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
    (void)conn->WriteAll(raw.data(), raw.size());
    char buf[256];
    Result<size_t> n = conn->Read(buf, sizeof(buf));
    EXPECT_TRUE(!n.ok() || *n == 0);
  }
}

// ---------------------------------------------------------------------------
// Full service acceptance

/// GETs `path` from the endpoint, returns the raw response.
std::string Scrape(uint16_t port, const std::string& path) {
  return RoundTrip(port,
                   "GET " + path + " HTTP/1.1\r\nConnection: close\r\n\r\n");
}

std::string BodyOf(const std::string& raw) {
  const size_t split = raw.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : raw.substr(split + 4);
}

TEST(ObsEndpointServiceTest, ContendedScrapeExposesEveryFamily) {
  ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = 256;
  options.trace_sample = 1;
  options.slow_log = 4;
  options.trace_ring = 64;
  CompletenessService service(options);

  obs::ObsHttpOptions http;
  ASSERT_TRUE(service.ServeObs(http).ok());
  const uint16_t port = service.obs_port();
  ASSERT_NE(port, 0);
  // Double-serve is refused, the original endpoint stays up.
  EXPECT_FALSE(service.ServeObs(http).ok());
  EXPECT_EQ(service.obs_port(), port);

  // Not ready before any setting is registered...
  EXPECT_NE(Scrape(port, "/readyz").find("503"), std::string::npos);

  AuditFixture fx_a = MakeAuditFixture(0);
  AuditFixture fx_b = MakeAuditFixture(1);
  ASSERT_OK_AND_ASSIGN(handle_a, service.RegisterSetting(fx_a.setting));
  ASSERT_OK_AND_ASSIGN(handle_b, service.RegisterSetting(fx_b.setting));
  EXPECT_NE(Scrape(port, "/readyz").find("200 OK"), std::string::npos);

  // Two tenants contending, with scrapers hammering /metrics and
  // /traces the whole time.
  std::vector<DecisionRequest> requests;
  for (const Query* q : {&fx_a.by_patient, &fx_a.all_cities}) {
    for (ProblemKind kind : AllProblemKinds()) {
      DecisionRequest request;
      request.kind = kind;
      request.query = *q;
      request.rcqp_max_tuples = 2;
      requests.push_back(std::move(request));
    }
  }
  std::vector<ServiceRequest> batch;
  for (const DecisionRequest& request : requests) {
    DecisionRequest a = request;
    a.cinstance = fx_a.audited;
    DecisionRequest b = request;
    b.cinstance = fx_b.audited;
    batch.push_back(ServiceRequest{handle_a, std::move(a)});
    batch.push_back(ServiceRequest{handle_b, std::move(b)});
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&stop, &scrapes, port, t] {
      while (!stop.load()) {
        const std::string raw =
            Scrape(port, t == 0 ? "/metrics" : "/traces");
        EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos);
        scrapes.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 4; ++round) {
    std::vector<Decision> decisions = service.SubmitBatch(batch);
    ASSERT_EQ(decisions.size(), batch.size());
  }
  stop = true;
  for (std::thread& scraper : scrapers) scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  // The final exposition names every registered family.
  const std::string exposition = BodyOf(Scrape(port, "/metrics"));
  for (const obs::MetricFamily* family : obs::AllMetricFamilies()) {
    EXPECT_NE(exposition.find(family->name), std::string::npos)
        << "family missing from /metrics: " << family->name;
  }
  // The endpoint's own instruments are in there too, with real traffic.
  EXPECT_NE(exposition.find(std::string(obs::kMetricHttpRequestsTotal.name) +
                            "{code=\"200\",path=\"/metrics\"}"),
            std::string::npos);

  // /traces parses as a Chrome trace: one JSON object, balanced, with
  // the traceEvents array carrying the sampled spans.
  const std::string traces = BodyOf(Scrape(port, "/traces"));
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces.front(), '{');
  EXPECT_NE(traces.find("\"traceEvents\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : traces) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"' && !escaped) in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0) << "trace JSON has unbalanced brackets";

  // The text dashboards serve too.
  EXPECT_NE(Scrape(port, "/report").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(Scrape(port, "/slow").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(Scrape(port, "/debug/active").find("HTTP/1.1 200"),
            std::string::npos);

  service.StopObs();
  EXPECT_EQ(service.obs_port(), 0);
}

}  // namespace
}  // namespace relcomp
