// CompletenessService: multi-setting registration / dedup / release,
// interleaved cross-setting batches vs independent engines, async futures
// and completion callbacks vs the synchronous path, dedup-aware batch
// coalescing (exactly one miss), and witness propagation through the
// service on the known-incomplete Fig. 1 acquisition instance.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/rcdp.h"
#include "engine/engine.h"
#include "reductions/examples_fig1.h"
#include "service/service.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::S;

using testing::AuditFixture;
using testing::MakeAuditFixture;

/// Every problem kind × both audit queries for one fixture.
std::vector<DecisionRequest> AuditWorkload(const AuditFixture& fx) {
  std::vector<DecisionRequest> requests;
  for (const Query* q : {&fx.by_patient, &fx.all_cities}) {
    for (ProblemKind kind : AllProblemKinds()) {
      DecisionRequest request;
      request.kind = kind;
      request.query = *q;
      request.cinstance = fx.audited;
      request.rcqp_max_tuples = 2;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

ServiceOptions MakeOptions(size_t workers, size_t cache,
                           bool coalesce = true) {
  ServiceOptions options;
  options.num_workers = workers;
  options.cache_capacity = cache;
  options.memoize = cache > 0;
  options.coalesce = coalesce;
  return options;
}

void ExpectSameDecisions(const std::vector<Decision>& a,
                         const std::vector<Decision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code())
        << "request " << i << ": " << a[i].status.ToString() << " vs "
        << b[i].status.ToString();
    if (a[i].status.ok() && b[i].status.ok()) {
      EXPECT_EQ(a[i].answer, b[i].answer) << "request " << i;
    }
  }
}

TEST(ServiceTest, InterleavedBatchesMatchIndependentEngines) {
  AuditFixture fx_a = MakeAuditFixture(0);
  AuditFixture fx_b = MakeAuditFixture(1);
  std::vector<DecisionRequest> workload_a = AuditWorkload(fx_a);
  std::vector<DecisionRequest> workload_b = AuditWorkload(fx_b);

  // Reference: one independent engine per setting, computed inline.
  EngineOptions engine_options;
  engine_options.num_workers = 0;
  engine_options.cache_capacity = 0;
  engine_options.memoize = false;
  ASSERT_OK_AND_ASSIGN(engine_a,
                       CompletenessEngine::Create(fx_a.setting, engine_options));
  ASSERT_OK_AND_ASSIGN(engine_b,
                       CompletenessEngine::Create(fx_b.setting, engine_options));
  std::vector<Decision> expected_a, expected_b;
  for (const DecisionRequest& request : workload_a) {
    expected_a.push_back(engine_a->Decide(request));
  }
  for (const DecisionRequest& request : workload_b) {
    expected_b.push_back(engine_b->Decide(request));
  }

  // One service hosting both settings; the two workloads interleaved
  // request by request in a single batch.
  CompletenessService service(MakeOptions(/*workers=*/4, /*cache=*/256));
  ASSERT_OK_AND_ASSIGN(handle_a, service.RegisterSetting(fx_a.setting));
  ASSERT_OK_AND_ASSIGN(handle_b, service.RegisterSetting(fx_b.setting));
  EXPECT_NE(handle_a, handle_b);
  EXPECT_EQ(service.num_settings(), 2u);

  std::vector<ServiceRequest> interleaved;
  ASSERT_EQ(workload_a.size(), workload_b.size());
  for (size_t i = 0; i < workload_a.size(); ++i) {
    interleaved.push_back(ServiceRequest{handle_a, workload_a[i]});
    interleaved.push_back(ServiceRequest{handle_b, workload_b[i]});
  }
  std::vector<Decision> decisions = service.SubmitBatch(interleaved);

  std::vector<Decision> got_a, got_b;
  for (size_t i = 0; i < decisions.size(); i += 2) {
    got_a.push_back(decisions[i]);
    got_b.push_back(decisions[i + 1]);
  }
  ExpectSameDecisions(expected_a, got_a);
  ExpectSameDecisions(expected_b, got_b);

  ASSERT_OK_AND_ASSIGN(counters_a, service.counters(handle_a));
  ASSERT_OK_AND_ASSIGN(counters_b, service.counters(handle_b));
  EXPECT_EQ(counters_a.requests, workload_a.size());
  EXPECT_EQ(counters_b.requests, workload_b.size());
  EXPECT_EQ(counters_a.errors, 0u);
  EXPECT_EQ(counters_b.errors, 0u);
  EngineCounters total = service.TotalCounters();
  EXPECT_EQ(total.requests, workload_a.size() + workload_b.size());
}

TEST(ServiceTest, RegisteringIdenticalSettingReturnsSameHandle) {
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(first, service.RegisterSetting(fx.setting));
  // A byte-identical rebuild of the setting fingerprints identically and
  // dedups onto the same shard.
  ASSERT_OK_AND_ASSIGN(second,
                       service.RegisterSetting(MakeAuditFixture().setting));
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.num_settings(), 1u);

  // A genuinely different setting gets its own handle.
  ASSERT_OK_AND_ASSIGN(other,
                       service.RegisterSetting(MakeAuditFixture(1).setting));
  EXPECT_NE(first, other);
  EXPECT_EQ(service.num_settings(), 2u);

  // The deduped shard shares one cache: the same request decided via either
  // registration is a hit the second time.
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;
  Decision miss = service.Decide(first, request);
  ASSERT_TRUE(miss.status.ok()) << miss.status.ToString();
  Decision hit = service.Decide(second, request);
  EXPECT_TRUE(hit.from_cache);
}

TEST(ServiceTest, ReleaseSettingRefcountsAndEvicts) {
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));
  ASSERT_OK_AND_ASSIGN(again, service.RegisterSetting(fx.setting));
  ASSERT_EQ(handle, again);

  // Two registrations: the first release keeps the shard alive.
  EXPECT_OK(service.ReleaseSetting(handle));
  EXPECT_EQ(service.num_settings(), 1u);
  DecisionRequest request;
  request.kind = ProblemKind::kRcqpWeak;
  request.query = fx.by_patient;
  EXPECT_TRUE(service.Decide(handle, request).status.ok());

  // The second release evicts; the handle goes dark, errors are graceful.
  EXPECT_OK(service.ReleaseSetting(handle));
  EXPECT_EQ(service.num_settings(), 0u);
  EXPECT_EQ(service.ReleaseSetting(handle).code(), StatusCode::kNotFound);
  Decision gone = service.Decide(handle, request);
  EXPECT_EQ(gone.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(service.counters(handle).ok());

  // Re-registering after eviction issues a fresh handle.
  ASSERT_OK_AND_ASSIGN(fresh, service.RegisterSetting(fx.setting));
  EXPECT_NE(fresh, handle);
}

TEST(ServiceTest, InvalidHandleYieldsErrorDecisions) {
  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/16));
  SettingHandle bogus{42};
  DecisionRequest request;

  EXPECT_EQ(service.Decide(bogus, request).status.code(),
            StatusCode::kNotFound);
  std::vector<Decision> batch =
      service.SubmitBatch({ServiceRequest{bogus, request},
                           ServiceRequest{SettingHandle{}, request}});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(batch[1].status.code(), StatusCode::kNotFound);
  Decision async = service.SubmitAsync(ServiceRequest{bogus, request}).get();
  EXPECT_EQ(async.status.code(), StatusCode::kNotFound);
}

TEST(ServiceTest, AsyncFuturesMatchSynchronousBatch) {
  AuditFixture fx = MakeAuditFixture();
  std::vector<DecisionRequest> workload = AuditWorkload(fx);

  for (size_t workers : {1u, 4u}) {
    CompletenessService service(MakeOptions(workers, /*cache=*/256));
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

    // Submit everything async first, then the same workload synchronously
    // on a second, cacheless service as the reference.
    std::vector<std::future<Decision>> futures;
    futures.reserve(workload.size());
    for (const DecisionRequest& request : workload) {
      futures.push_back(service.SubmitAsync(ServiceRequest{handle, request}));
    }
    std::vector<Decision> async_decisions;
    async_decisions.reserve(futures.size());
    for (std::future<Decision>& future : futures) {
      async_decisions.push_back(future.get());
    }

    CompletenessService reference(MakeOptions(/*workers=*/0, /*cache=*/0,
                                              /*coalesce=*/false));
    ASSERT_OK_AND_ASSIGN(ref_handle, reference.RegisterSetting(fx.setting));
    std::vector<Decision> sync_decisions =
        reference.SubmitBatch(ref_handle, workload);
    ExpectSameDecisions(sync_decisions, async_decisions);
  }
}

TEST(ServiceTest, AsyncCompletionCallbackDelivers) {
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  std::promise<Decision> delivered;
  service.SubmitAsync(ServiceRequest{handle, request},
                      [&delivered](Decision decision) {
                        delivered.set_value(std::move(decision));
                      });
  Decision decision = delivered.get_future().get();
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_EQ(decision.answer, service.Decide(handle, request).answer);
}

TEST(ServiceTest, ReentrantSubmissionFromCallbackDoesNotDeadlock) {
  // One worker, and the completion callback itself submits more work: the
  // nested batch must run inline on the worker (parking on the queue this
  // thread is the only drainer of would deadlock the pool forever).
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(MakeOptions(/*workers=*/1, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest first;
  first.kind = ProblemKind::kRcdpStrong;
  first.query = fx.by_patient;
  first.cinstance = fx.audited;
  DecisionRequest second = first;
  second.query = fx.all_cities;

  std::promise<std::pair<Decision, Decision>> done;
  service.SubmitAsync(
      ServiceRequest{handle, first},
      [&service, &done, handle, second](Decision outer) {
        std::vector<Decision> nested = service.SubmitBatch(handle, {second});
        done.set_value({std::move(outer), std::move(nested[0])});
      });
  std::future<std::pair<Decision, Decision>> future = done.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "re-entrant submission deadlocked the pool";
  auto [outer, nested] = future.get();
  ASSERT_TRUE(outer.status.ok()) << outer.status.ToString();
  ASSERT_TRUE(nested.status.ok()) << nested.status.ToString();
  EXPECT_EQ(nested.answer, service.Decide(handle, second).answer);
}

TEST(ServiceTest, CoalescedDuplicateBatchRecordsOneMiss) {
  AuditFixture fx = MakeAuditFixture();
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  for (size_t workers : {0u, 4u}) {
    CompletenessService service(MakeOptions(workers, /*cache=*/64));
    ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

    std::vector<DecisionRequest> batch(8, request);
    std::vector<Decision> decisions = service.SubmitBatch(handle, batch);
    ASSERT_EQ(decisions.size(), 8u);
    size_t coalesced = 0;
    for (size_t i = 0; i < decisions.size(); ++i) {
      ASSERT_TRUE(decisions[i].status.ok());
      EXPECT_EQ(decisions[i].answer, decisions[0].answer);
      if (decisions[i].from_cache) {
        ++coalesced;
        EXPECT_NE(decisions[i].note.find("coalesced"), std::string::npos)
            << decisions[i].note;
      }
    }
    EXPECT_EQ(coalesced, 7u);

    ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
    EXPECT_EQ(counters.requests, 8u);
    EXPECT_EQ(counters.cache_misses, 1u) << "workers=" << workers;
    EXPECT_EQ(counters.cache_hits, 7u);
    EXPECT_EQ(counters.coalesced, 7u);
  }
}

TEST(ServiceTest, CoalescingWorksWithMemoizationDisabled) {
  AuditFixture fx = MakeAuditFixture();
  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;

  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/0));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));
  std::vector<Decision> decisions =
      service.SubmitBatch(handle, std::vector<DecisionRequest>(4, request));
  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  // No LRU, but batch dedup still collapses the four to one computation.
  EXPECT_EQ(counters.cache_misses, 1u);
  EXPECT_EQ(counters.coalesced, 3u);
  for (const Decision& decision : decisions) {
    EXPECT_EQ(decision.answer, decisions[0].answer);
  }
}

TEST(ServiceTest, WitnessPropagatesThroughService) {
  // Example 2.2 / Fig. 1 acquisition master: the ground instance can never
  // be complete for Q3 (diabetics born 2000, any city).
  PatientsFixture fx = MakePatientsFixture();
  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.acquisition));

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.q3;
  request.cinstance = CInstance::FromInstance(fx.ground);
  request.want_witness = true;

  Decision decision = service.Decide(handle, request);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  EXPECT_FALSE(decision.answer);
  ASSERT_NE(decision.witness, nullptr);
  EXPECT_FALSE(decision.witness->note.empty());

  // The cross-check: the witness matches what the low-level decider reports.
  CompletenessWitness direct;
  ASSERT_OK_AND_ASSIGN(
      answer, RcdpStrong(fx.q3, request.cinstance, fx.acquisition, {}, nullptr,
                         &direct));
  EXPECT_FALSE(answer);
  EXPECT_EQ(decision.witness->note, direct.note);

  // Cached replays keep carrying the witness.
  Decision cached = service.Decide(handle, request);
  EXPECT_TRUE(cached.from_cache);
  ASSERT_NE(cached.witness, nullptr);
  EXPECT_EQ(cached.witness->note, direct.note);

  // Witness-less runs are keyed separately and stay lean.
  request.want_witness = false;
  Decision lean = service.Decide(handle, request);
  EXPECT_FALSE(lean.from_cache);
  EXPECT_EQ(lean.witness, nullptr);
}

TEST(ServiceTest, ViableWitnessReportsCompleteWorld) {
  AuditFixture fx = MakeAuditFixture();
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/0));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpViable;
  request.query = fx.by_patient;
  request.cinstance = fx.audited;
  request.want_witness = true;
  Decision decision = service.Decide(handle, request);
  ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
  if (decision.answer) {
    ASSERT_NE(decision.witness, nullptr);
    EXPECT_NE(decision.witness->note.find("complete world"),
              std::string::npos);
  }
}

TEST(ServiceTest, ConcurrentIdenticalAsyncRequestsCoalesce) {
  // A slow-ish request submitted many times concurrently: the in-flight
  // table must collapse the duplicates that overlap, and every future must
  // resolve to the same answer. (Exact coalesced counts are scheduling-
  // dependent; the invariant is hits + misses == requests and one miss at
  // minimum.)
  PatientsFixture fx = MakePatientsFixture();
  CompletenessService service(MakeOptions(/*workers=*/4, /*cache=*/0));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest request;
  request.kind = ProblemKind::kRcdpStrong;
  request.query = fx.q1;
  request.cinstance = fx.ctable;

  constexpr size_t kSubmissions = 16;
  std::vector<std::future<Decision>> futures;
  for (size_t i = 0; i < kSubmissions; ++i) {
    futures.push_back(service.SubmitAsync(ServiceRequest{handle, request}));
  }
  bool expected = false;
  for (size_t i = 0; i < futures.size(); ++i) {
    Decision decision = futures[i].get();
    ASSERT_TRUE(decision.status.ok()) << decision.status.ToString();
    if (i == 0) {
      expected = decision.answer;
    } else {
      EXPECT_EQ(decision.answer, expected);
    }
  }
  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.requests, kSubmissions);
  EXPECT_EQ(counters.cache_hits + counters.cache_misses, kSubmissions);
  EXPECT_GE(counters.cache_misses, 1u);
  EXPECT_EQ(counters.coalesced, counters.cache_hits);
}

TEST(ServiceTest, PerSettingCacheCapacityOverride) {
  // ShardOptions::cache_capacity overrides the service-wide default per
  // setting: a capacity-1 shard thrashes between two alternating requests
  // while a default shard keeps both resident.
  AuditFixture tiny_fx = MakeAuditFixture(0);
  AuditFixture roomy_fx = MakeAuditFixture(1);
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/1024));
  ShardOptions tiny_options;
  tiny_options.cache_capacity = 1;
  ASSERT_OK_AND_ASSIGN(tiny, service.RegisterSetting(tiny_fx.setting,
                                                     tiny_options));
  ASSERT_OK_AND_ASSIGN(roomy, service.RegisterSetting(roomy_fx.setting));

  ASSERT_OK_AND_ASSIGN(tiny_resolved, service.shard_options(tiny));
  ASSERT_OK_AND_ASSIGN(roomy_resolved, service.shard_options(roomy));
  EXPECT_EQ(tiny_resolved.cache_capacity, 1u);
  EXPECT_EQ(roomy_resolved.cache_capacity, 1024u);

  auto alternate = [&](const AuditFixture& fx, SettingHandle handle) {
    DecisionRequest first;
    first.kind = ProblemKind::kRcdpStrong;
    first.query = fx.by_patient;
    first.cinstance = fx.audited;
    DecisionRequest second = first;
    second.query = fx.all_cities;
    // first, second, first, second: with capacity 1 every access evicts
    // the other entry — four misses; with room for both, two hits.
    for (int round = 0; round < 2; ++round) {
      service.Decide(handle, first);
      service.Decide(handle, second);
    }
  };
  alternate(tiny_fx, tiny);
  alternate(roomy_fx, roomy);

  ASSERT_OK_AND_ASSIGN(tiny_counters, service.counters(tiny));
  ASSERT_OK_AND_ASSIGN(roomy_counters, service.counters(roomy));
  EXPECT_EQ(tiny_counters.cache_misses, 4u);
  EXPECT_EQ(tiny_counters.cache_hits, 0u);
  EXPECT_EQ(roomy_counters.cache_misses, 2u);
  EXPECT_EQ(roomy_counters.cache_hits, 2u);
}

TEST(ServiceTest, TotalCountersEqualsPerShardSumAfterMixedTraffic) {
  // The counter-drift regression: after sync, async, batch (with
  // duplicates), stream, shed, and cancelled traffic across several
  // shards, the field-wise sum of every live shard's counters must equal
  // TotalCounters() exactly, and each shard's outcome buckets must
  // partition its requests.
  AuditFixture fx_a = MakeAuditFixture(0);
  AuditFixture fx_b = MakeAuditFixture(1);
  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle_a, service.RegisterSetting(fx_a.setting));
  ASSERT_OK_AND_ASSIGN(handle_b, service.RegisterSetting(fx_b.setting));

  std::vector<DecisionRequest> workload_a = AuditWorkload(fx_a);
  std::vector<DecisionRequest> workload_b = AuditWorkload(fx_b);

  // Sync + batch with duplicates.
  service.Decide(handle_a, workload_a[0]);
  std::vector<DecisionRequest> dup_batch = workload_a;
  dup_batch.push_back(workload_a[0]);
  dup_batch.push_back(workload_a[0]);
  service.SubmitBatch(handle_a, dup_batch);

  // Async futures on the other shard.
  std::vector<std::future<Decision>> futures;
  for (const DecisionRequest& request : workload_b) {
    futures.push_back(service.SubmitAsync(ServiceRequest{handle_b, request}));
  }
  for (std::future<Decision>& future : futures) future.get();

  // Stream across both shards.
  std::vector<ServiceRequest> interleaved;
  for (size_t i = 0; i < workload_a.size(); ++i) {
    interleaved.push_back(ServiceRequest{handle_a, workload_a[i]});
    interleaved.push_back(ServiceRequest{handle_b, workload_b[i]});
  }
  size_t streamed = 0;
  service.SubmitStream(interleaved,
                       [&streamed](size_t, const Decision&) { ++streamed; });
  EXPECT_EQ(streamed, interleaved.size());

  // A cancelled and an expired request.
  sched::CancelSource source;
  source.Cancel();
  ServiceRequest cancelled;
  cancelled.setting = handle_a;
  cancelled.request = workload_a[1];
  cancelled.sched.cancel = source.token();
  EXPECT_EQ(service.SubmitAsync(std::move(cancelled)).get().status.code(),
            StatusCode::kCancelled);
  ServiceRequest expired;
  expired.setting = handle_b;
  expired.request = workload_b[1];
  expired.sched.deadline = sched::Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(service.SubmitAsync(std::move(expired)).get().status.code(),
            StatusCode::kDeadlineExceeded);

  EngineCounters summed;
  for (SettingHandle handle : {handle_a, handle_b}) {
    ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
    EXPECT_EQ(counters.requests,
              counters.cache_hits + counters.cache_misses + counters.rejected +
                  counters.expired + counters.cancelled)
        << "shard " << handle.id << ": " << counters.ToString();
    summed += counters;
  }
  EXPECT_EQ(summed.ToString(), service.TotalCounters().ToString());
}

TEST(ServiceTest, MaxStepsReachesDecidersPerRequestAndPerShard) {
  // The budget-plumbing bugfix: SearchOptions::max_steps must be reachable
  // both per request and as a ShardOptions default — before this PR every
  // service tenant silently ran with the built-in 50M budget.
  // The slow fixture's Mod(T) enumeration has no early exit, so a 1-step
  // budget always exhausts and a few-thousand-step budget always finishes.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/8,
                                                     /*vars=*/3);
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/64));

  // Per request: a one-step budget exhausts immediately.
  ASSERT_OK_AND_ASSIGN(plain, service.RegisterSetting(fx.setting));
  DecisionRequest tiny = fx.Request();
  tiny.options.max_steps = 1;
  Decision exhausted = service.Decide(plain, tiny);
  EXPECT_EQ(exhausted.status.code(), StatusCode::kResourceExhausted)
      << exhausted.status.ToString();
  EXPECT_TRUE(service.Decide(plain, fx.Request()).status.ok());

  // Per shard: requests that leave max_steps at the built-in default
  // inherit the shard's default; an explicit per-request budget wins.
  // (A second, fingerprint-distinct setting gets its own shard.)
  testing::SlowFixture fx_b = testing::MakeSlowFixture(/*master_rows=*/9,
                                                       /*vars=*/3);
  ShardOptions starved;
  starved.max_steps = 1;
  ASSERT_OK_AND_ASSIGN(shard, service.RegisterSetting(fx_b.setting, starved));
  ASSERT_OK_AND_ASSIGN(resolved, service.shard_options(shard));
  EXPECT_EQ(resolved.max_steps, 1u);
  Decision shard_limited = service.Decide(shard, fx_b.Request());
  EXPECT_EQ(shard_limited.status.code(), StatusCode::kResourceExhausted)
      << "ShardOptions::max_steps never reached the decider";
  DecisionRequest explicit_budget = fx_b.Request();
  explicit_budget.options.max_steps = 500'000;
  Decision roomy = service.Decide(shard, explicit_budget);
  EXPECT_TRUE(roomy.status.ok())
      << "an explicit per-request budget must override the shard default: "
      << roomy.status.ToString();
}

TEST(ServiceTest, ExhaustedEvaluationIsNeverCachedAndCountsAsError) {
  // kResourceExhausted is a resource verdict, not an answer: with
  // memoization ON it must not be replayed from the LRU, and the counter
  // partition must stay intact (exhaustions are misses + errors).
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/8,
                                                     /*vars=*/3);
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/64));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  DecisionRequest tiny = fx.Request();
  tiny.options.max_steps = 1;

  Decision first = service.Decide(handle, tiny);
  Decision second = service.Decide(handle, tiny);
  EXPECT_EQ(first.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(second.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(first.from_cache);
  EXPECT_FALSE(second.from_cache) << "an exhausted decision was cached";

  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.cache_misses, 2u);
  EXPECT_EQ(counters.cache_hits, 0u);
  EXPECT_EQ(counters.errors, 2u);
  EXPECT_EQ(counters.shed_running, 0u)
      << "budget exhaustion must not masquerade as a mid-run abort";
  EXPECT_EQ(counters.requests,
            counters.cache_hits + counters.cache_misses + counters.rejected +
                counters.expired + counters.cancelled);

  // A definitive verdict for the same query under a workable budget still
  // caches normally afterwards.
  DecisionRequest roomy = tiny;
  roomy.options.max_steps = SearchOptions::kDefaultMaxSteps;
  EXPECT_TRUE(service.Decide(handle, roomy).status.ok());
  EXPECT_TRUE(service.Decide(handle, roomy).from_cache);
}

TEST(ServiceTest, RequestLevelCancelTokenSurvivesSchedMerge) {
  // A DecisionRequest's own options.cancel must keep working on the
  // non-coalesced path even when the submission also carries a (live)
  // sched token — the two merge either-cancels, not last-writer-wins.
  testing::SlowFixture fx = testing::MakeSlowFixture(/*master_rows=*/8,
                                                     /*vars=*/3);
  CompletenessService service(MakeOptions(/*workers=*/0, /*cache=*/0,
                                          /*coalesce=*/false));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));

  sched::CancelSource poisoned;
  poisoned.Cancel();
  sched::CancelSource live;  // valid, never cancelled
  ServiceRequest request{handle, fx.Request()};
  request.request.options.cancel = poisoned.token();
  request.request.options.checkpoint_interval = 1;
  request.sched.cancel = live.token();
  Decision decision = service.Decide(request);
  EXPECT_EQ(decision.status.code(), StatusCode::kCancelled)
      << "the request-level token was dropped in the sched merge: "
      << decision.status.ToString();

  ASSERT_OK_AND_ASSIGN(counters, service.counters(handle));
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.cache_misses, 0u);
  EXPECT_EQ(counters.requests,
            counters.cache_hits + counters.cache_misses + counters.rejected +
                counters.expired + counters.cancelled);
}

TEST(ServiceTest, EngineAdapterMatchesService) {
  // The deprecated single-setting engine is a shim over the service: same
  // answers, same counters semantics.
  AuditFixture fx = MakeAuditFixture();
  std::vector<DecisionRequest> workload = AuditWorkload(fx);

  EngineOptions engine_options;
  engine_options.num_workers = 2;
  engine_options.cache_capacity = 128;
  ASSERT_OK_AND_ASSIGN(engine,
                       CompletenessEngine::Create(fx.setting, engine_options));
  std::vector<Decision> via_engine = engine->SubmitBatch(workload);

  CompletenessService service(MakeOptions(/*workers=*/2, /*cache=*/128));
  ASSERT_OK_AND_ASSIGN(handle, service.RegisterSetting(fx.setting));
  std::vector<Decision> via_service = service.SubmitBatch(handle, workload);
  ExpectSameDecisions(via_engine, via_service);

  // The adapter exposes its backing registration.
  EXPECT_TRUE(engine->handle().valid());
  EXPECT_EQ(engine->service().num_settings(), 1u);
  Decision async = engine->SubmitAsync(workload[0]).get();
  EXPECT_EQ(async.status.code(), via_engine[0].status.code());
  if (async.status.ok()) {
    EXPECT_EQ(async.answer, via_engine[0].answer);
  }
}

}  // namespace
}  // namespace relcomp
