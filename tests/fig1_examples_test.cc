// The paper's running example as executable assertions: Fig. 1 c-table,
// Examples 1.1, 2.1–2.4.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/minp.h"
#include "core/rcdp.h"
#include "query/printer.h"
#include "reductions/examples_fig1.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;

TEST(Fig1Test, SettingsValidate) {
  PatientsFixture fx = MakePatientsFixture();
  EXPECT_OK(fx.setting.Validate());
  EXPECT_OK(fx.acquisition.Validate());
}

TEST(Fig1Test, CTableIsConsistent) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(fx.setting, fx.ctable));
  EXPECT_TRUE(ok);
}

TEST(Fig1Test, WorldsForceBobOrJohnForT2) {
  // The CC pins t2's (name, yob) to the master rows for NHS 915-15-356.
  PatientsFixture fx = MakePatientsFixture();
  Instance witness;
  ASSERT_OK_AND_ASSIGN(ok,
                       IsConsistent(fx.setting, fx.ctable, {}, nullptr,
                                    &witness));
  ASSERT_TRUE(ok);
  bool found = false;
  for (const Tuple& t : witness.at("MVisit").rows()) {
    if (t[0] == S("915-15-356")) {
      found = true;
      EXPECT_TRUE(t[1] == S("John") || t[1] == S("Bob"));
      EXPECT_EQ(t[3], I(2000));  // z ≠ 2001 and master forces 2000
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fig1Test, Example23_Q1StronglyComplete) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q1, fx.ctable, fx.setting));
  EXPECT_TRUE(strong);
}

TEST(Fig1Test, Example23_Q1AnswerIsJohnInEveryWorld) {
  PatientsFixture fx = MakePatientsFixture();
  Instance world;
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(fx.setting, fx.ctable, {}, nullptr,
                                        &world));
  ASSERT_TRUE(ok);
  ASSERT_OK_AND_ASSIGN(answers, fx.q1.Eval(world));
  EXPECT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers.Contains({S("John")}));
}

TEST(Fig1Test, Example23_Q4NotStronglyComplete) {
  PatientsFixture fx = MakePatientsFixture();
  CompletenessWitness witness;
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q4, fx.ctable, fx.setting, {},
                                          nullptr, &witness));
  EXPECT_FALSE(strong);
  // The witness world instantiated t2 as John; the extension adds Bob.
  EXPECT_EQ(witness.answer, Tuple({S("Bob")}));
}

TEST(Fig1Test, Example23_Q4ViablyComplete) {
  PatientsFixture fx = MakePatientsFixture();
  Instance world;
  ASSERT_OK_AND_ASSIGN(viable, RcdpViable(fx.q4, fx.ctable, fx.setting, {},
                                          nullptr, &world));
  EXPECT_TRUE(viable);
  // Any world that keeps t2 is complete: once t2's name is fixed, the FD
  // NHS → name blocks the other candidate name for NHS 915-15-356, so the
  // answer cannot change. (The strong-model counterexample is the world
  // where t2's condition z ≠ 2001 drops the row entirely.)
  ASSERT_OK_AND_ASSIGN(answers, fx.q4.Eval(world));
  EXPECT_TRUE(answers.Contains({S("John")}));
  bool keeps_t2 = false;
  for (const Tuple& t : world.at("MVisit").rows()) {
    if (t[0] == S("915-15-356")) keeps_t2 = true;
  }
  EXPECT_TRUE(keeps_t2);
}

TEST(Fig1Test, Example23_Q4WeaklyComplete) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(fx.q4, fx.ctable, fx.setting));
  EXPECT_TRUE(weak);
}

TEST(Fig1Test, Example22_Q2IncompleteOnGroundD) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(
      complete, RcdpStrongGround(fx.q2, fx.ground, fx.acquisition));
  EXPECT_FALSE(complete);
}

TEST(Fig1Test, Example22_OneTupleMakesQ2Complete) {
  PatientsFixture fx = MakePatientsFixture();
  Instance extended = fx.ground;
  extended.AddTuple("MVisit",
                    {S("915-15-321"), S("Alice"), S("EDI"), I(2000), S("F"),
                     S("15/03/2015"), S("Flu"), S("01")});
  ASSERT_OK_AND_ASSIGN(
      complete, RcdpStrongGround(fx.q2, extended, fx.acquisition));
  EXPECT_TRUE(complete);
}

TEST(Fig1Test, Example22_Q3NeverComplete) {
  PatientsFixture fx = MakePatientsFixture();
  ASSERT_OK_AND_ASSIGN(
      complete, RcdpStrongGround(fx.q3, fx.ground, fx.acquisition));
  EXPECT_FALSE(complete);
  // Even after adding the diabetic London patients the paper mentions, the
  // open world keeps Q3 incomplete.
  Instance extended = fx.ground;
  extended.AddTuple("MVisit",
                    {S("915-15-400"), S("Zoe"), S("LON"), I(2000), S("F"),
                     S("15/03/2015"), S("Diabetes"), S("02")});
  ASSERT_OK_AND_ASSIGN(
      still, RcdpStrongGround(fx.q3, extended, fx.acquisition));
  EXPECT_FALSE(still);
}

TEST(Fig1Test, Example24_T1AloneMinimalForQ1) {
  // Example 2.4: T is strongly complete for Q1 but not minimal — keeping
  // only t1 yields a smaller complete database.
  PatientsFixture fx = MakePatientsFixture();
  CInstance t1_only(fx.setting.schema);
  t1_only.at("MVisit").AddRow(fx.ctable.at("MVisit").rows()[0]);
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q1, t1_only, fx.setting));
  EXPECT_TRUE(strong);
}

TEST(Fig1Test, FdCcBlocksConflictingNames) {
  // The FD NHS → name (Example 2.1) rejects a second name for NHS -335.
  PatientsFixture fx = MakePatientsFixture();
  Instance bad = fx.ground;
  bad.AddTuple("MVisit", {S("915-15-335"), S("Impostor"), S("LON"), I(1999),
                          S("M"), S("16/03/2015"), S("Flu"), S("03")});
  ASSERT_OK_AND_ASSIGN(closed,
                       SatisfiesCCs(bad, fx.setting.dm, fx.setting.ccs));
  EXPECT_FALSE(closed);
}

TEST(Fig1Test, PrinterRendersCTableWithConditions) {
  PatientsFixture fx = MakePatientsFixture();
  std::string rendered = FormatCTable(fx.ctable.at("MVisit"));
  EXPECT_NE(rendered.find("cond"), std::string::npos);
  EXPECT_NE(rendered.find("!="), std::string::npos);
  EXPECT_NE(rendered.find("915-15-335"), std::string::npos);
}

TEST(Fig1Test, ScaledFixtureKeepsClaims) {
  PatientsFixture fx = MakeScaledPatientsFixture(4, 1);
  ASSERT_OK_AND_ASSIGN(ok, IsConsistent(fx.setting, fx.ctable));
  EXPECT_TRUE(ok);
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(fx.q1, fx.ctable, fx.setting));
  EXPECT_TRUE(strong);
}

}  // namespace
}  // namespace relcomp
