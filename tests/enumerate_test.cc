// Tests for the enumeration machinery: odometer valuations, tuple
// enumeration, Mod(T) world enumeration, and the symmetry-broken canonical
// enumerator (checked for equivalence against exhaustive enumeration).
#include <gtest/gtest.h>

#include <set>

#include "core/enumerate.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

TEST(ValuationEnumeratorTest, ZeroVariablesYieldOneEmptyValuation) {
  ValuationEnumerator e({});
  Valuation mu;
  EXPECT_TRUE(e.Next(&mu));
  EXPECT_FALSE(e.Next(&mu));
  EXPECT_EQ(e.TotalCount(), 1u);
}

TEST(ValuationEnumeratorTest, ProductCount) {
  VarCandidateList vars;
  vars.emplace_back(V(0), std::vector<Value>{I(0), I(1)});
  vars.emplace_back(V(1), std::vector<Value>{I(0), I(1), I(2)});
  ValuationEnumerator e(vars);
  EXPECT_EQ(e.TotalCount(), 6u);
  std::set<std::string> seen;
  Valuation mu;
  while (e.Next(&mu)) {
    seen.insert(mu.Get(V(0))->ToString() + "," + mu.Get(V(1))->ToString());
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ValuationEnumeratorTest, EmptyCandidateListMeansNoValuations) {
  VarCandidateList vars;
  vars.emplace_back(V(0), std::vector<Value>{});
  ValuationEnumerator e(vars);
  Valuation mu;
  EXPECT_FALSE(e.Next(&mu));
  EXPECT_EQ(e.TotalCount(), 0u);
}

TEST(TupleEnumeratorTest, RespectsFiniteDomains) {
  RelationSchema schema(
      "R", {Attribute{"a", Domain::Boolean()},
            Attribute{"b", Domain::Finite({S("x"), S("y"), S("z")})}});
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(schema);
  setting.dm = Instance(setting.master_schema);
  CInstance empty(setting.schema);
  AdomContext adom = AdomContext::Build(setting, empty, nullptr);
  TupleEnumerator e(schema, adom);
  EXPECT_EQ(e.TotalCount(), 6u);
  Tuple t;
  size_t count = 0;
  while (e.Next(&t)) {
    ++count;
    EXPECT_TRUE(Domain::Boolean().Contains(t[0]));
  }
  EXPECT_EQ(count, 6u);
}

TEST(ModEnumeratorTest, DeduplicatesIsomorphicWorlds) {
  // Two variables in one Boolean column: 4 valuations, 3 distinct worlds
  // ({0}, {1}, {0,1}).
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  CInstance t(setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  t.at("B").AddRow({Cell(V(1))});
  AdomContext adom = AdomContext::Build(setting, t, nullptr);
  SearchStats stats;
  ModEnumerator worlds(t, setting, adom, {}, &stats);
  int count = 0;
  Instance world;
  while (true) {
    Result<bool> got = worlds.Next(nullptr, &world);
    ASSERT_TRUE(got.ok());
    if (!*got) break;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(stats.valuations, 4u);
}

// ---------------------------------------------------------------------------
// Canonical (symmetry-broken) enumeration.
// ---------------------------------------------------------------------------

TEST(CanonicalEnumeratorTest, TwoOpenVarsNoBase) {
  // Representatives of the partitions of 2 elements: (f0, f0), (f0, f1).
  std::vector<OpenVarCandidate> vars;
  vars.push_back({V(0), {}, true});
  vars.push_back({V(1), {}, true});
  CanonicalValuationEnumerator e(std::move(vars), {},
                                 {S("@f0"), S("@f1"), S("@f2")});
  Valuation mu;
  int count = 0;
  while (e.Next(&mu)) ++count;
  EXPECT_EQ(count, 2);  // Bell(2)
}

TEST(CanonicalEnumeratorTest, ThreeOpenVarsBellNumber) {
  std::vector<OpenVarCandidate> vars;
  for (int i = 0; i < 3; ++i) vars.push_back({V(i), {}, true});
  CanonicalValuationEnumerator e(std::move(vars), {},
                                 {S("@f0"), S("@f1"), S("@f2"), S("@f3")});
  Valuation mu;
  int count = 0;
  while (e.Next(&mu)) ++count;
  EXPECT_EQ(count, 5);  // Bell(3)
}

TEST(CanonicalEnumeratorTest, BaseValuesAlwaysAvailable) {
  std::vector<OpenVarCandidate> vars;
  vars.push_back({V(0), {}, true});
  CanonicalValuationEnumerator e(std::move(vars), {I(7)}, {S("@f0")});
  Valuation mu;
  std::set<std::string> seen;
  while (e.Next(&mu)) seen.insert(mu.Get(V(0))->ToString());
  EXPECT_EQ(seen.size(), 2u);  // 7 and @f0
  EXPECT_TRUE(seen.count("7"));
}

TEST(CanonicalEnumeratorTest, ClosedVarsUnaffected) {
  std::vector<OpenVarCandidate> vars;
  vars.push_back({V(0), {I(0), I(1)}, false});
  vars.push_back({V(1), {}, true});
  CanonicalValuationEnumerator e(std::move(vars), {}, {S("@f0"), S("@f1")});
  Valuation mu;
  int count = 0;
  while (e.Next(&mu)) ++count;
  EXPECT_EQ(count, 2 * 1);  // closed 2 × canonical fresh 1
}

TEST(CanonicalEnumeratorTest, NoValuesForOpenVarExhaustsImmediately) {
  std::vector<OpenVarCandidate> vars;
  vars.push_back({V(0), {}, true});
  CanonicalValuationEnumerator e(std::move(vars), {}, {});
  Valuation mu;
  EXPECT_FALSE(e.Next(&mu));
}

TEST(CanonicalEnumeratorTest, EquivalentToExhaustiveUpToRenaming) {
  // Every exhaustive valuation over {b} ∪ {f0, f1, f2} must have a canonical
  // representative with the same equality pattern and base positions.
  std::vector<Value> base = {I(99)};
  std::vector<Value> fresh = {S("@f0"), S("@f1"), S("@f2")};
  const int n = 3;
  // Collect canonical signatures: for each pair (i, j) equal/unequal, plus
  // base-value identity per position.
  auto signature = [&](const std::vector<Value>& vals) {
    std::string sig;
    for (int i = 0; i < n; ++i) {
      bool is_base = vals[static_cast<size_t>(i)] == I(99);
      sig += is_base ? 'b' : '.';
      for (int j = 0; j < i; ++j) {
        sig += (vals[static_cast<size_t>(i)] ==
                vals[static_cast<size_t>(j)])
                   ? '='
                   : '!';
      }
    }
    return sig;
  };
  std::set<std::string> canonical_sigs;
  {
    std::vector<OpenVarCandidate> vars;
    for (int i = 0; i < n; ++i) vars.push_back({V(i), {}, true});
    CanonicalValuationEnumerator e(std::move(vars), base, fresh);
    Valuation mu;
    while (e.Next(&mu)) {
      std::vector<Value> vals;
      for (int i = 0; i < n; ++i) vals.push_back(*mu.Get(V(i)));
      canonical_sigs.insert(signature(vals));
    }
  }
  // Exhaustive enumeration over the same pool.
  std::vector<Value> pool = base;
  pool.insert(pool.end(), fresh.begin(), fresh.end());
  for (size_t a = 0; a < pool.size(); ++a) {
    for (size_t b = 0; b < pool.size(); ++b) {
      for (size_t c = 0; c < pool.size(); ++c) {
        std::string sig = signature({pool[a], pool[b], pool[c]});
        EXPECT_TRUE(canonical_sigs.count(sig))
            << "missing representative for " << sig;
      }
    }
  }
}

TEST(CanonicalEnumeratorTest, CqHelperMarksFiniteDomainsClosed) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "R", {Attribute{"a", Domain::Boolean()},
            Attribute{"b", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  CInstance empty(setting.schema);
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(V(0)), CTerm(V(1))}, {RelAtom{"R", {V(0), V(1)}}}));
  AdomContext adom = AdomContext::Build(setting, empty, &q);
  std::vector<OpenVarCandidate> vars =
      CqVarCandidatesOpen(q.cq(), setting.schema, adom);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_FALSE(vars[0].open);  // Boolean column
  EXPECT_EQ(vars[0].values.size(), 2u);
  EXPECT_TRUE(vars[1].open);  // infinite column
}

TEST(AdomTest, ContainsConstantsFreshAndFiniteDomains) {
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema(
      "R", {Attribute{"a", Domain::Finite({S("fd1"), S("fd2")})},
            Attribute{"b", Domain::Infinite()}}));
  setting.dm = Instance(setting.master_schema);
  CInstance t(setting.schema);
  t.at("R").AddRow({Cell(S("fd1")), Cell(V(0))});
  t.at("R").AddRow({Cell(S("fd2")), Cell(S("const"))});
  AdomContext adom = AdomContext::Build(setting, t, nullptr);
  auto contains = [&adom](const Value& v) {
    return std::binary_search(adom.values().begin(), adom.values().end(), v);
  };
  EXPECT_TRUE(contains(S("fd1")));
  EXPECT_TRUE(contains(S("const")));
  EXPECT_FALSE(adom.fresh().empty());
  EXPECT_TRUE(contains(adom.fresh()[0]));
  // Fresh values never collide with base constants.
  for (const Value& f : adom.fresh()) {
    EXPECT_FALSE(std::binary_search(adom.base().begin(), adom.base().end(),
                                    f));
  }
}

}  // namespace
}  // namespace relcomp
