// Tests for MINP in the three models: Lemma 4.7 single-tuple removals,
// the Lemma 5.7 coDP dichotomy for weak CQ minimality (with Example 5.5),
// and the Thm 4.8 / Cor 6.3 / Thm 5.6 reduction sweeps.
#include <gtest/gtest.h>

#include "core/minp.h"
#include "reductions/thm48_minps.h"
#include "reductions/thm56_minpw.h"
#include "reductions/thm61_viable.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::S;
using testing::V;

// Boolean unary relation bounded by master {0, 1}.
struct BoolFixture {
  PartiallyClosedSetting setting;
  Query q;

  BoolFixture() {
    setting.schema.AddRelation(
        RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
    setting.master_schema.AddRelation(
        RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
    setting.dm = Instance(setting.master_schema);
    setting.dm.AddTuple("Bm", {I(0)});
    setting.dm.AddTuple("Bm", {I(1)});
    ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
    setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                             std::vector<int>{0});
    q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));
  }
};

TEST(MinpStrongGroundTest, FullRelationIsMinimal) {
  BoolFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("B", {I(0)});
  db.AddTuple("B", {I(1)});
  // Complete; removing any tuple re-opens the instance (the removed value
  // can be re-added, changing the answer), so both tuples are necessary.
  ASSERT_OK_AND_ASSIGN(minimal, MinpStrongGround(fx.q, db, fx.setting));
  EXPECT_TRUE(minimal);
}

TEST(MinpStrongGroundTest, IncompleteInstanceNotMinimal) {
  BoolFixture fx;
  Instance db(fx.setting.schema);
  db.AddTuple("B", {I(0)});
  ASSERT_OK_AND_ASSIGN(minimal, MinpStrongGround(fx.q, db, fx.setting));
  EXPECT_FALSE(minimal);
}

TEST(MinpStrongGroundTest, RedundantTupleBreaksMinimality) {
  // Add a second relation D that the query ignores: its tuples are
  // removable without affecting completeness.
  BoolFixture fx;
  fx.setting.schema.AddRelation(
      RelationSchema("D", {Attribute{"x", Domain::Boolean()}}));
  fx.setting.master_schema.AddRelation(
      RelationSchema("Dm", {Attribute{"x", Domain::Boolean()}}));
  Instance dm(fx.setting.master_schema);
  dm.AddTuple("Bm", {I(0)});
  dm.AddTuple("Bm", {I(1)});
  dm.AddTuple("Dm", {I(0)});
  dm.AddTuple("Dm", {I(1)});
  fx.setting.dm = dm;
  ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"D", {V(0)}}});
  fx.setting.ccs.emplace_back("dbound", std::move(cc_q), "Dm",
                              std::vector<int>{0});
  Instance db(fx.setting.schema);
  db.AddTuple("B", {I(0)});
  db.AddTuple("B", {I(1)});
  db.AddTuple("D", {I(0)});
  db.AddTuple("D", {I(1)});
  ASSERT_OK_AND_ASSIGN(minimal, MinpStrongGround(fx.q, db, fx.setting));
  EXPECT_FALSE(minimal);
}

TEST(MinpStrongTest, CInstanceMinimalityQuantifiesAllWorlds) {
  BoolFixture fx;
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(I(0))});
  t.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(minimal, MinpStrong(fx.q, t, fx.setting));
  EXPECT_TRUE(minimal);
  // Adding a variable row: the worlds where it collapses onto {0,1} stay
  // minimal; there is no third value (domain is Boolean), so all worlds
  // still minimal — but the c-instance has a redundant row.
  CInstance t2 = t;
  t2.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(minimal2, MinpStrong(fx.q, t2, fx.setting));
  EXPECT_TRUE(minimal2);  // worlds are still exactly {0,1}
}

TEST(MinpViableTest, SomeWorldMinimalSuffices) {
  BoolFixture fx;
  // Master bound shrunk to {1}: world x=1 gives the minimal complete {1}.
  fx.setting.dm.at("Bm").Erase({I(0)});
  CInstance t(fx.setting.schema);
  t.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(viable_min, MinpViable(fx.q, t, fx.setting));
  EXPECT_TRUE(viable_min);
  ASSERT_OK_AND_ASSIGN(strong_min, MinpStrong(fx.q, t, fx.setting));
  EXPECT_TRUE(strong_min);  // the only world is {1}
}

TEST(MinpWeakTest, Example55EmptyIsMinimalNonEmptyIsNot) {
  // Example 5.5: Q(x) :- R1(y), R2(z), x = a. Both ∅ and ({0},{1}) are
  // weakly complete; only ∅ is minimal.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(RelationSchema("R1", {Attribute{"x"}}));
  setting.schema.AddRelation(RelationSchema("R2", {Attribute{"x"}}));
  setting.dm = Instance(setting.master_schema);
  Query q = Query::Cq(ConjunctiveQuery(
      {CTerm(S("a"))}, {RelAtom{"R1", {V(0)}}, RelAtom{"R2", {V(1)}}}));
  CInstance empty(setting.schema);
  ASSERT_OK_AND_ASSIGN(empty_min, MinpWeak(q, empty, setting));
  EXPECT_TRUE(empty_min);
  CInstance i0(setting.schema);
  i0.at("R1").AddRow({Cell(I(0))});
  i0.at("R2").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(i0_min, MinpWeak(q, i0, setting));
  EXPECT_FALSE(i0_min);  // ∅ ⊊ I0 is weakly complete too
  // The CQ fast path agrees.
  ASSERT_OK_AND_ASSIGN(fast_empty, MinpWeakCq(q, empty, setting));
  EXPECT_TRUE(fast_empty);
  ASSERT_OK_AND_ASSIGN(fast_i0, MinpWeakCq(q, i0, setting));
  EXPECT_FALSE(fast_i0);
}

TEST(MinpWeakTest, SingletonDichotomy) {
  // Single Boolean relation with Q = identity and master bound {1}: the
  // empty instance is NOT weakly complete (every extension answers {1}),
  // so per Lemma 5.7 exactly the consistent singletons are minimal.
  PartiallyClosedSetting setting;
  setting.schema.AddRelation(
      RelationSchema("B", {Attribute{"x", Domain::Boolean()}}));
  setting.master_schema.AddRelation(
      RelationSchema("Bm", {Attribute{"x", Domain::Boolean()}}));
  setting.dm = Instance(setting.master_schema);
  setting.dm.AddTuple("Bm", {I(1)});
  ConjunctiveQuery cc_q({CTerm(V(0))}, {RelAtom{"B", {V(0)}}});
  setting.ccs.emplace_back("bound", std::move(cc_q), "Bm",
                           std::vector<int>{0});
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"B", {V(0)}}}));

  CInstance empty(setting.schema);
  ASSERT_OK_AND_ASSIGN(empty_weak, RcdpWeak(q, empty, setting));
  EXPECT_FALSE(empty_weak);
  ASSERT_OK_AND_ASSIGN(empty_min, MinpWeakCq(q, empty, setting));
  EXPECT_FALSE(empty_min);

  CInstance singleton(setting.schema);
  singleton.at("B").AddRow({Cell(I(1))});
  ASSERT_OK_AND_ASSIGN(single_min, MinpWeakCq(q, singleton, setting));
  EXPECT_TRUE(single_min);
  ASSERT_OK_AND_ASSIGN(general_agrees, MinpWeak(q, singleton, setting));
  EXPECT_EQ(single_min, general_agrees);

  CInstance two(setting.schema);
  two.at("B").AddRow({Cell(I(1))});
  two.at("B").AddRow({Cell(V(0))});
  ASSERT_OK_AND_ASSIGN(two_min, MinpWeakCq(q, two, setting));
  EXPECT_FALSE(two_min);
}

TEST(MinpWeakTest, RowBudgetGuard) {
  PartiallyClosedSetting setting = testing::OpenSetting(testing::EdgeSchema());
  Query q = Query::Cq(ConjunctiveQuery({CTerm(V(0))},
                                       {RelAtom{"E", {V(0), V(1)}}}));
  CInstance t(setting.schema);
  for (int i = 0; i < 30; ++i) {
    t.at("E").AddRow({Cell(I(i)), Cell(I(i + 1))});
  }
  Result<bool> r = MinpWeak(q, t, setting);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Reduction sweeps.
// ---------------------------------------------------------------------------

class Thm48Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Thm48Sweep, MinpStrongMatchesQbfOracle) {
  Qbf qbf = MakeExistsForallExists(1, 1, 1, RandomCnf3(3, 1, GetParam()));
  GadgetProblem gadget = BuildSigma3Gadget(qbf, /*full_rs=*/true);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      minimal, MinpStrong(gadget.query, gadget.cinstance, gadget.setting));
  // Claim: ϕ false ⇔ T is a minimal strongly complete c-instance.
  EXPECT_EQ(minimal, !qbf.Eval()) << qbf.matrix.ToString();
}

TEST_P(Thm48Sweep, ViableModelMatchesQbfOracle) {
  Qbf qbf = MakeExistsForallExists(1, 1, 1, RandomCnf3(3, 1, GetParam()));
  GadgetProblem gadget = BuildViableGadget(qbf);
  ASSERT_OK_AND_ASSIGN(
      viable, RcdpViable(gadget.query, gadget.cinstance, gadget.setting));
  EXPECT_EQ(viable, qbf.Eval()) << qbf.matrix.ToString();
  ASSERT_OK_AND_ASSIGN(
      minimal, MinpViable(gadget.query, gadget.cinstance, gadget.setting));
  EXPECT_EQ(minimal, qbf.Eval()) << qbf.matrix.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm48Sweep, ::testing::Range<uint64_t>(0, 8));

class Thm56Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Thm56Sweep, MinpWeakCqMatchesSatUnsatOracle) {
  Cnf3 phi = RandomCnf3(3, 2, GetParam());
  Cnf3 phi_prime = RandomCnf3(3, 2, GetParam() + 1000);
  GadgetProblem gadget = BuildSatUnsatGadget(phi, phi_prime, 3);
  EXPECT_OK(gadget.setting.Validate());
  ASSERT_OK_AND_ASSIGN(
      minimal, MinpWeakCq(gadget.query, gadget.cinstance, gadget.setting));
  bool sat_unsat = phi.IsSatisfiable() && !phi_prime.IsSatisfiable();
  // Claim: ∅ minimal weakly complete ⇔ ¬(φ sat ∧ φ' unsat).
  EXPECT_EQ(minimal, !sat_unsat)
      << "phi: " << phi.ToString() << " phi': " << phi_prime.ToString();
}

TEST_P(Thm56Sweep, UnsatisfiablePhiMakesEmptyMinimal) {
  // Force φ unsatisfiable: x & !x.
  Cnf3 phi;
  phi.num_vars = 3;
  phi.clauses.push_back({Lit::Pos(0), Lit::Pos(0), Lit::Pos(0)});
  phi.clauses.push_back({Lit::Neg(0), Lit::Neg(0), Lit::Neg(0)});
  Cnf3 phi_prime = RandomCnf3(3, 2, GetParam());
  GadgetProblem gadget = BuildSatUnsatGadget(phi, phi_prime, 3);
  ASSERT_OK_AND_ASSIGN(
      minimal, MinpWeakCq(gadget.query, gadget.cinstance, gadget.setting));
  EXPECT_TRUE(minimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Thm56Sweep, ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace relcomp
