// Property tests over randomized instances: the model relationships of
// Section 2.2 (strong ⇒ weak ∧ viable; ground strong ⇔ viable), query
// monotonicity, and CC subset closure (Lemma 4.7(a)).
#include <gtest/gtest.h>

#include "core/rcdp.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::I;
using testing::V;

// Deterministic RNG.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  int Int(int n) { return static_cast<int>(Next() % static_cast<uint64_t>(n)); }
};

// A small random partially closed world: unary Boolean relation A and
// binary relation E over {0, 1, 2}, with A bounded by a random master.
struct RandomProblem {
  PartiallyClosedSetting setting;
  CInstance cinstance;
  Query query;
};

RandomProblem MakeRandomProblem(uint64_t seed) {
  Rng rng{seed};
  RandomProblem p;
  Domain small = Domain::Finite({I(0), I(1), I(2)});
  p.setting.schema.AddRelation(
      RelationSchema("A", {Attribute{"x", small}}));
  p.setting.schema.AddRelation(RelationSchema(
      "E", {Attribute{"a", small}, Attribute{"b", small}}));
  p.setting.master_schema.AddRelation(
      RelationSchema("Am", {Attribute{"x", small}}));
  p.setting.dm = Instance(p.setting.master_schema);
  // Random nonempty master bound for A.
  for (int v = 0; v < 3; ++v) {
    if (rng.Int(2) == 0) p.setting.dm.AddTuple("Am", {I(v)});
  }
  p.setting.dm.AddTuple("Am", {I(rng.Int(3))});
  ConjunctiveQuery bound({CTerm(V(0))}, {RelAtom{"A", {V(0)}}});
  p.setting.ccs.emplace_back("bound", std::move(bound), "Am",
                             std::vector<int>{0});

  p.cinstance = CInstance(p.setting.schema);
  int a_rows = rng.Int(3);
  for (int i = 0; i < a_rows; ++i) {
    if (rng.Int(3) == 0) {
      p.cinstance.at("A").AddRow({Cell(V(i))});
    } else {
      p.cinstance.at("A").AddRow({Cell(I(rng.Int(3)))});
    }
  }
  int e_rows = rng.Int(3);
  for (int i = 0; i < e_rows; ++i) {
    p.cinstance.at("E").AddRow({Cell(I(rng.Int(3))), Cell(I(rng.Int(3)))});
  }

  // Query: either A(x) or the A-E join.
  if (rng.Int(2) == 0) {
    p.query = Query::Cq(
        ConjunctiveQuery({CTerm(V(0))}, {RelAtom{"A", {V(0)}}}));
  } else {
    p.query = Query::Cq(ConjunctiveQuery(
        {CTerm(V(0)), CTerm(V(1))},
        {RelAtom{"A", {V(0)}}, RelAtom{"E", {V(0), V(1)}}}));
  }
  return p;
}

class ModelRelations : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelRelations, StrongImpliesWeakAndViable) {
  RandomProblem p = MakeRandomProblem(GetParam());
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(p.query, p.cinstance, p.setting));
  if (strong) {
    ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(p.query, p.cinstance, p.setting));
    EXPECT_TRUE(weak) << p.cinstance.ToString();
    ASSERT_OK_AND_ASSIGN(viable, RcdpViable(p.query, p.cinstance, p.setting));
    EXPECT_TRUE(viable) << p.cinstance.ToString();
  }
}

TEST_P(ModelRelations, GroundStrongEqualsViable) {
  RandomProblem p = MakeRandomProblem(GetParam() + 5000);
  // Ground the c-instance by an arbitrary valuation (bind all vars to 0).
  Valuation mu;
  for (VarId v : p.cinstance.Vars()) mu.Bind(v, I(0));
  ASSERT_OK_AND_ASSIGN(ground, p.cinstance.Apply(mu));
  CInstance gi = CInstance::FromInstance(ground);
  Result<bool> strong = RcdpStrong(p.query, gi, p.setting);
  Result<bool> viable = RcdpViable(p.query, gi, p.setting);
  ASSERT_TRUE(strong.ok() && viable.ok());
  EXPECT_EQ(*strong, *viable);
}

TEST_P(ModelRelations, MonotonicityOfCq) {
  RandomProblem p = MakeRandomProblem(GetParam() + 9000);
  Valuation mu;
  for (VarId v : p.cinstance.Vars()) mu.Bind(v, I(1));
  ASSERT_OK_AND_ASSIGN(world, p.cinstance.Apply(mu));
  Instance bigger = world;
  bigger.AddTuple("E", {I(0), I(0)});
  bigger.AddTuple("A", {I(0)});
  ASSERT_OK_AND_ASSIGN(small_out, p.query.Eval(world));
  ASSERT_OK_AND_ASSIGN(big_out, p.query.Eval(bigger));
  EXPECT_TRUE(small_out.IsSubsetOf(big_out));
}

TEST_P(ModelRelations, CcSatisfactionClosedUnderSubsets) {
  RandomProblem p = MakeRandomProblem(GetParam() + 13000);
  Valuation mu;
  for (VarId v : p.cinstance.Vars()) mu.Bind(v, I(2));
  ASSERT_OK_AND_ASSIGN(world, p.cinstance.Apply(mu));
  ASSERT_OK_AND_ASSIGN(closed,
                       SatisfiesCCs(world, p.setting.dm, p.setting.ccs));
  if (!closed) return;
  // Remove each tuple in turn; the CCs must stay satisfied (Lemma 4.7(a)).
  for (const Relation& rel : world.relations()) {
    for (const Tuple& t : rel.rows()) {
      Instance smaller = world;
      smaller.RemoveTuple(rel.schema().name(), t);
      ASSERT_OK_AND_ASSIGN(
          sub, SatisfiesCCs(smaller, p.setting.dm, p.setting.ccs));
      EXPECT_TRUE(sub);
    }
  }
}

TEST_P(ModelRelations, WeakHoldsWheneverViableAndCertainIsWorldAnswer) {
  // Sanity relationship: a strongly complete instance's certain answers are
  // the common answer of all worlds, so no extension can enlarge them.
  RandomProblem p = MakeRandomProblem(GetParam() + 17000);
  ASSERT_OK_AND_ASSIGN(strong, RcdpStrong(p.query, p.cinstance, p.setting));
  ASSERT_OK_AND_ASSIGN(weak, RcdpWeak(p.query, p.cinstance, p.setting));
  // strong ⇒ weak (contrapositive check).
  EXPECT_TRUE(!strong || weak);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRelations,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace relcomp
